#include "node/deferred_executor.h"

#include "common/stopwatch.h"
#include "node/receipts.h"
#include "obs/tx_lifecycle.h"
#include "runtime/committer.h"
#include "runtime/concurrent_executor.h"

namespace nezha {

DeferredExecutionPipeline::DeferredExecutionPipeline(
    const DeferredExecConfig& config)
    : config_(config),
      pool_(config.worker_threads),
      scheduler_(MakeScheduler(config.scheme)) {}

Result<EpochReport> DeferredExecutionPipeline::ProcessBatch(
    const std::vector<Transaction>& txs) {
  EpochReport report;
  report.epoch = next_epoch_++;

  std::vector<Transaction> fresh;
  fresh.reserve(txs.size());
  for (const Transaction& tx : txs) {
    if (seen_txs_.insert(tx.Id()).second) fresh.push_back(tx);
  }
  report.txs = fresh.size();
  if (fresh.empty()) {
    report.state_root = state_.RootHash();
    return report;
  }

  // Lifecycle: a batch handed to the deferred pipeline is by definition
  // consensus-confirmed (the bridge ordered it), so open the epoch at
  // kConfirmed; any ingress stamps from a mempool are claimed by key.
  obs::TxLifecycleTracer& lifecycle = obs::Lifecycle();
  if (lifecycle.enabled()) {
    std::vector<std::uint64_t> keys;
    keys.reserve(fresh.size());
    for (const Transaction& tx : fresh) keys.push_back(LifecycleKey(tx));
    lifecycle.BeginEpoch(report.epoch, SchemeName(config_.scheme), keys);
    lifecycle.StampAll(obs::TxStage::kConfirmed);
  }

  Stopwatch watch;
  const StateSnapshot snapshot = state_.MakeSnapshot(report.epoch);
  BatchExecutionResult exec =
      ExecuteBatchConcurrent(pool_, snapshot, fresh, config_.exec_mode);
  report.execute_ms = watch.ElapsedMillis();

  watch.Restart();
  auto schedule = scheduler_->BuildSchedule(exec.rwsets);
  if (!schedule.ok()) return schedule.status();
  report.cc_ms = watch.ElapsedMillis();
  report.cc_metrics = scheduler_->metrics();

  watch.Restart();
  const CommitStats commit =
      CommitSchedule(pool_, state_, *schedule, exec.rwsets);
  // CommitSchedule both executes the groups and applies them, so the two
  // trailing stages collapse to one stamp each.
  lifecycle.StampAll(obs::TxStage::kExecuted);
  report.state_root = state_.RootHash();
  lifecycle.StampAll(obs::TxStage::kCommitted);
  report.commit_ms = watch.ElapsedMillis();

  report.committed = commit.committed_txs;
  report.aborted = schedule->NumAborted();
  report.max_commit_group = commit.max_group;
  report.receipt_root = ComputeReceiptRoot(
      BuildReceipts(report.epoch, fresh, exec.rwsets, *schedule));
  report.latency = lifecycle.FinishEpoch();
  return report;
}

}  // namespace nezha
