#include "node/deferred_executor.h"

#include "common/stopwatch.h"
#include "node/receipts.h"
#include "runtime/committer.h"
#include "runtime/concurrent_executor.h"

namespace nezha {

DeferredExecutionPipeline::DeferredExecutionPipeline(
    const DeferredExecConfig& config)
    : config_(config),
      pool_(config.worker_threads),
      scheduler_(MakeScheduler(config.scheme)) {}

Result<EpochReport> DeferredExecutionPipeline::ProcessBatch(
    const std::vector<Transaction>& txs) {
  EpochReport report;
  report.epoch = next_epoch_++;

  std::vector<Transaction> fresh;
  fresh.reserve(txs.size());
  for (const Transaction& tx : txs) {
    if (seen_txs_.insert(tx.Id()).second) fresh.push_back(tx);
  }
  report.txs = fresh.size();
  if (fresh.empty()) {
    report.state_root = state_.RootHash();
    return report;
  }

  Stopwatch watch;
  const StateSnapshot snapshot = state_.MakeSnapshot(report.epoch);
  BatchExecutionResult exec =
      ExecuteBatchConcurrent(pool_, snapshot, fresh, config_.exec_mode);
  report.execute_ms = watch.ElapsedMillis();

  watch.Restart();
  auto schedule = scheduler_->BuildSchedule(exec.rwsets);
  if (!schedule.ok()) return schedule.status();
  report.cc_ms = watch.ElapsedMillis();
  report.cc_metrics = scheduler_->metrics();

  watch.Restart();
  const CommitStats commit =
      CommitSchedule(pool_, state_, *schedule, exec.rwsets);
  report.state_root = state_.RootHash();
  report.commit_ms = watch.ElapsedMillis();

  report.committed = commit.committed_txs;
  report.aborted = schedule->NumAborted();
  report.max_commit_group = commit.max_group;
  report.receipt_root = ComputeReceiptRoot(
      BuildReceipts(report.epoch, fresh, exec.rwsets, *schedule));
  return report;
}

}  // namespace nezha
