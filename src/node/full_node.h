// FullNode: the four-phase concurrent transaction processing pipeline of
// §III.B, assembled over all the substrates:
//
//   1. Validation      — verify every concurrent block of the epoch
//                        (linkage, tx Merkle root, previous state root);
//   2. Concurrent      — speculatively simulate all transactions against
//      execution         the snapshot of epoch e-1 across a thread pool;
//   3. Concurrency     — run the configured Scheduler (Serial / OCC / CG /
//      control           Nezha) over the read/write sets;
//   4. Commitment      — apply commit groups (concurrently within a group),
//                        flush to storage, compute the new state root.
//
// The Serial scheme short-circuits phases 2-3: it executes and commits each
// transaction one-by-one against the live state, exactly like today's
// DAG-based blockchains (and like the paper's baseline).
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "cc/scheduler.h"
#include "common/thread_pool.h"
#include "ledger/epoch.h"
#include "ledger/ledger.h"
#include "node/receipts.h"
#include "obs/profiler.h"
#include "obs/tx_lifecycle.h"
#include "runtime/concurrent_executor.h"
#include "storage/state_db.h"
#include "vm/cost_model.h"
#include "vm/executor.h"

namespace nezha {

enum class SchemeKind { kSerial, kOcc, kCg, kNezha, kNezhaNoReorder };

/// Factory for the scheme's Scheduler implementation. When `pool` is given,
/// the Nezha schemes build their ACG sharded and sort cluster-parallel on
/// it (byte-identical output; docs/PARALLELISM.md); other schemes ignore
/// it. The pool must outlive the scheduler.
std::unique_ptr<Scheduler> MakeScheduler(SchemeKind kind,
                                         ThreadPool* pool = nullptr);

/// Parse/print helpers for CLI tools ("serial", "occ", "cg", "nezha",
/// "nezha-noreorder").
const char* SchemeName(SchemeKind kind);
Result<SchemeKind> ParseScheme(std::string_view name);

struct NodeConfig {
  SchemeKind scheme = SchemeKind::kNezha;
  ChainId max_chains = 12;         ///< maximum block concurrency (paper: 12)
  std::size_t worker_threads = 0;  ///< 0 = hardware concurrency
  ExecMode exec_mode = ExecMode::kNative;
  /// When true, EpochReport's execute_ms / serial latencies come from the
  /// calibrated EVM cost model instead of MiniVM wall time (DESIGN.md §4);
  /// concurrency-control and commit latencies are always measured.
  bool model_execution_cost = false;
  CostModel cost_model;
};

struct EpochReport {
  EpochId epoch = 0;
  std::size_t block_concurrency = 0;
  std::size_t txs = 0;
  std::size_t committed = 0;
  std::size_t aborted = 0;

  double validate_ms = 0;
  double execute_ms = 0;  ///< measured, or modelled when configured
  double cc_ms = 0;
  double commit_ms = 0;
  double TotalMs() const {
    return validate_ms + execute_ms + cc_ms + commit_ms;
  }

  SchedulerMetrics cc_metrics;
  /// Per-transaction latency decomposition for the epoch (end-to-end and
  /// stage-wait percentiles, top-K slowest transactions); empty when the
  /// lifecycle tracer is disabled.
  obs::EpochLatencySummary latency;
  /// Pipeline profile for the epoch: stage CPU vs wall, parallel efficiency,
  /// queue waits, idle gaps (obs/profiler.h). Default-empty when the
  /// profiler is disabled.
  obs::EpochProfile profile;
  std::size_t max_commit_group = 0;
  Hash256 state_root{};
  /// Merkle root over this epoch's transaction receipts (zero for the
  /// Serial baseline, which has no abort outcomes to attest).
  Hash256 receipt_root{};
};

/// One epoch after the prepare half of the pipeline (validation, concurrent
/// speculative execution, concurrency control, receipt construction) and
/// before the commit half (group-parallel execution, durable commit). This
/// is the unit the cross-epoch pipeline hands from its prepare thread to
/// its commit thread (node/pipeline.h).
struct PreparedEpoch {
  /// Set when the producer transfers batch ownership (the pipeline does);
  /// `batch` then points at it. ProcessEpoch leaves it null and points
  /// `batch` at the caller's batch instead.
  std::unique_ptr<EpochBatch> owned_batch;
  const EpochBatch* batch = nullptr;
  StateSnapshot snapshot;         ///< epoch e-1 view the schedule was built on
  BatchExecutionResult exec;
  Schedule schedule;
  std::vector<Receipt> receipts;  ///< pure function of batch+rwsets+schedule
  /// Partially filled: identity plus the validate/execute/cc phases.
  EpochReport report;
  /// Observability handles opened on the prepare thread; the commit thread
  /// binds to them so its stamps resolve to this epoch even while the
  /// prepare thread has already opened the next epoch's.
  std::uint64_t lifecycle_slot = 0;
  obs::ProfileWindowId profile_window = obs::kProfileWindowNone;
  /// Scheduler last-build gauges captured right after BuildSchedule: under
  /// pipelining the global gauges may already describe epoch N+1 by the
  /// time epoch N's flight record is written.
  std::uint32_t acg_shards = 0;
  std::uint32_t sort_clusters = 0;
};

class FullNode {
 public:
  explicit FullNode(const NodeConfig& config, KVStore* kv = nullptr);

  const NodeConfig& config() const { return config_; }
  ParallelChainLedger& ledger() { return ledger_; }
  StateDB& state() { return state_; }
  ThreadPool& pool() { return *pool_; }
  /// Receipt lookup by transaction id (persisted when a KVStore is
  /// attached; written by the concurrent-scheme pipeline).
  const ReceiptStore& receipts() const { return receipts_; }

  /// Current state snapshot (what the next epoch executes against).
  StateSnapshot Snapshot(EpochId epoch) { return state_.MakeSnapshot(epoch); }

  /// Runs the full pipeline over one epoch batch, updates the state, and
  /// commits it durably: the state records, receipts, epoch root and commit
  /// journal land in ONE atomic KV batch, preceded by a "j/pending" redo
  /// record — so a crash anywhere in the sequence leaves the store either
  /// pre-epoch or (after Recover()) fully committed, never torn.
  Result<EpochReport> ProcessEpoch(const EpochBatch& batch);

  /// The prepare half of ProcessEpoch (phases 1-3 plus receipt
  /// construction), split out so the cross-epoch pipeline (node/pipeline.h)
  /// can overlap it with the previous epoch's commit half. The returned
  /// PreparedEpoch keeps a pointer to `batch`; the caller must keep the
  /// batch alive (or transfer ownership into `owned_batch`) until
  /// CommitPrepared consumes it. `incremental_acg` routes the Nezha
  /// schemes' speculative execution per confirmed block, feeding the
  /// address conflict graph incrementally (byte-identical schedule;
  /// docs/PARALLELISM.md). Invalid for the Serial scheme, which has no
  /// prepare/commit split.
  Result<PreparedEpoch> PrepareEpoch(const EpochBatch& batch,
                                     bool incremental_acg = false);

  /// The commit half: group-parallel execution, state root, durable commit,
  /// epoch observability close-out. `after_assemble` (when set) runs once
  /// the commit batch is assembled and the in-memory epoch root installed —
  /// from that point the ledger and the state values are stable, so the
  /// next epoch's prepare may start; the pipeline signals its handoff
  /// there. Only the durable write tail overlaps it.
  Result<EpochReport> CommitPrepared(
      PreparedEpoch&& prepared,
      const std::function<void()>& after_assemble = {});

  /// What Recover() found and did (docs/ROBUSTNESS.md).
  struct RecoveryReport {
    bool rolled_forward = false;  ///< a pending commit journal was re-applied
    EpochId last_committed = 0;   ///< newest journaled epoch (0 when none)
    Hash256 state_root{};         ///< recovered state root
    Hash256 receipt_root{};       ///< from the commit journal (zero if none)
  };

  /// Crash recovery. Must be called on a fresh node with a KVStore:
  ///  1. a pending commit journal (a crash mid-commit) is rolled forward by
  ///     re-applying its redo batch — a torn commit batch becomes whole;
  ///  2. ledger and state are rebuilt from storage with full re-validation;
  ///  3. cross-checks: the state root must match the last epoch root, and
  ///     the commit journal's epoch, state root, block ids and chain tips
  ///     must agree with the recovered ledger — Corruption otherwise.
  Result<RecoveryReport> Recover();

  /// Status-only wrapper around Recover() (pre-journal API, kept for
  /// callers that don't need the report).
  Status RecoverFromStorage();

 private:
  Result<EpochReport> ProcessSerial(const EpochBatch& batch);

  /// The durable commit, split at the pipeline handoff point:
  ///  * AssembleCommit builds the atomic commit batch + journal (reading
  ///    the state dirty set and the ledger chain tips) and installs the
  ///    in-memory epoch root — everything that must finish before the next
  ///    epoch's prepare may touch the ledger or the state;
  ///  * WriteCommit is the storage tail (pending-journal put, atomic batch
  ///    write, dirty clear, kCommit checkpoint, metrics) and touches only
  ///    the thread-safe KVStore/StateDB — safe to overlap the next prepare.
  /// CommitEpochDurable runs them back to back (the batch and Serial paths).
  struct CommitPlan {
    WriteBatch batch;           ///< the atomic commit batch (durable only)
    std::string journal_bytes;  ///< serialized pending journal (durable only)
    bool durable = false;       ///< false when no KVStore is attached
  };
  Result<CommitPlan> AssembleCommit(const EpochBatch& batch,
                                    EpochReport& report,
                                    std::span<const Receipt> receipts);
  Status WriteCommit(const EpochBatch& batch, EpochReport& report,
                     CommitPlan& plan);

  /// The shared durable-commit tail of both pipelines: journal + one atomic
  /// commit batch (state, receipts, epoch root), with the commit-path
  /// injection sites. Updates the ledger's in-memory root on success.
  Status CommitEpochDurable(const EpochBatch& batch, EpochReport& report,
                            std::span<const Receipt> receipts);

  NodeConfig config_;
  KVStore* kv_;
  ParallelChainLedger ledger_;
  StateDB state_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<Scheduler> scheduler_;
  ReceiptStore receipts_;
};

}  // namespace nezha
