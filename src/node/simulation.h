// Simulation driver: generates a DAG ledger workload (ω concurrent blocks
// per epoch from the SmallBank generator), runs the full-node pipeline over
// every epoch, and aggregates the per-epoch reports. All benches and most
// examples sit on top of this.
#pragma once

#include <vector>

#include "node/full_node.h"
#include "node/pipeline.h"
#include "workload/smallbank_workload.h"

namespace nezha {

struct SimulationConfig {
  NodeConfig node;
  WorkloadConfig workload;
  std::size_t block_size = 200;        ///< transactions per block (paper: 200)
  std::size_t block_concurrency = 4;   ///< ω: concurrent blocks per epoch
  std::size_t epochs = 3;
  std::uint64_t seed = 42;
  StateValue initial_savings = 100'000;
  StateValue initial_checking = 100'000;
};

struct SimulationSummary {
  std::vector<EpochReport> reports;

  std::size_t TotalTxs() const;
  std::size_t TotalCommitted() const;
  std::size_t TotalAborted() const;
  double AbortRate() const;

  double MeanValidateMs() const;
  double MeanExecuteMs() const;
  double MeanCcMs() const;
  double MeanCommitMs() const;
  /// Mean concurrency-control + commitment latency (the paper's Fig. 9
  /// metric).
  double MeanCcCommitMs() const;
  /// Mean total per-epoch processing latency (Table IV metric).
  double MeanTotalMs() const;

  /// Effective throughput in committed tx/s given an expected epoch cadence
  /// (1 s in the paper's Fig. 12): the pipeline drains one epoch per
  /// max(cadence, processing latency).
  double EffectiveTps(double epoch_interval_s = 1.0) const;
};

/// Builds the ledger, funds the accounts, mines ω blocks per epoch, and
/// processes every epoch through the configured scheme.
Result<SimulationSummary> RunSimulation(const SimulationConfig& config);

/// Like RunSimulation, but drives the epochs through the cross-epoch
/// pipeline (node/pipeline.h) at the given depth: epoch N's durable commit
/// tail overlaps epoch N+1's block build + validation + speculative
/// execution + concurrency control. Workload generation is byte-identical
/// to RunSimulation (same generator stream, same mempool FIFO), and so is
/// every committed output — state roots, receipt roots, schedules, stage
/// digests (tests/pipelined_node_test.cpp). `pipeline_stats` (optional)
/// receives the run's overlap accounting.
Result<SimulationSummary> RunSimulationPipelined(
    const SimulationConfig& config, std::size_t pipeline_depth,
    bool incremental_acg = true, PipelineStats* pipeline_stats = nullptr);

}  // namespace nezha
