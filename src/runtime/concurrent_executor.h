// Concurrent speculative execution — the paper's "concurrent execution
// phase": every transaction of the epoch batch is simulated against the
// previous epoch's snapshot, in parallel across a thread pool; results are
// the read/write sets the concurrency-control phase consumes.
#pragma once

#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "ledger/transaction.h"
#include "storage/state_db.h"
#include "vm/executor.h"
#include "vm/rwset.h"

namespace nezha {

struct BatchExecutionResult {
  /// One per transaction, in batch order. Malformed transactions get an
  /// empty rwset with ok == false (they abort downstream).
  std::vector<ReadWriteSet> rwsets;
  std::size_t malformed = 0;
};

/// Simulates the whole batch concurrently. Deterministic: each transaction
/// executes independently against the same immutable snapshot, so the
/// thread count never changes the results.
BatchExecutionResult ExecuteBatchConcurrent(ThreadPool& pool,
                                            const StateSnapshot& snapshot,
                                            std::span<const Transaction> txs,
                                            ExecMode mode = ExecMode::kNative);

/// Single-threaded reference (tests compare it with the concurrent path).
BatchExecutionResult ExecuteBatchSerial(const StateSnapshot& snapshot,
                                        std::span<const Transaction> txs,
                                        ExecMode mode = ExecMode::kNative);

}  // namespace nezha
