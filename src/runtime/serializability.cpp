#include "runtime/serializability.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "vm/contract.h"
#include "vm/logged_state.h"
#include "vm/minivm.h"

namespace nezha {
namespace {

std::string Describe(TxIndex t, SeqNum s) {
  std::ostringstream out;
  out << "T" << t << "(seq " << s << ")";
  return out.str();
}

}  // namespace

ValidationReport ValidateScheduleInvariants(
    const Schedule& schedule, std::span<const ReadWriteSet> rwsets) {
  const std::size_t n = rwsets.size();
  if (schedule.sequence.size() != n || schedule.aborted.size() != n) {
    return ValidationReport::Failure("schedule size mismatch");
  }

  // Committed transactions must carry a sequence number; groups must contain
  // exactly the committed transactions, in ascending sequence order.
  std::vector<bool> in_group(n, false);
  SeqNum last_group_seq = 0;
  for (const auto& group : schedule.groups) {
    if (group.empty()) return ValidationReport::Failure("empty commit group");
    const SeqNum seq = schedule.sequence[group[0]];
    if (seq <= last_group_seq) {
      return ValidationReport::Failure("groups not in ascending seq order");
    }
    last_group_seq = seq;
    for (TxIndex t : group) {
      if (t >= n) return ValidationReport::Failure("group tx out of range");
      if (schedule.aborted[t]) {
        return ValidationReport::Failure("aborted tx " + Describe(t, seq) +
                                         " inside a commit group");
      }
      if (schedule.sequence[t] != seq) {
        return ValidationReport::Failure("mixed sequence numbers in a group");
      }
      if (in_group[t]) {
        return ValidationReport::Failure("tx in two groups");
      }
      in_group[t] = true;
    }
  }
  for (TxIndex t = 0; t < n; ++t) {
    if (!schedule.aborted[t] && !in_group[t]) {
      return ValidationReport::Failure("committed tx missing from groups: " +
                                       Describe(t, schedule.sequence[t]));
    }
  }

  // Per-address ordering rules over committed transactions.
  struct AddressUse {
    std::vector<TxIndex> readers;
    std::vector<TxIndex> writers;
  };
  std::unordered_map<std::uint64_t, AddressUse> uses;
  for (TxIndex t = 0; t < n; ++t) {
    if (schedule.aborted[t]) continue;
    for (Address a : rwsets[t].reads) uses[a.value].readers.push_back(t);
    for (Address a : rwsets[t].writes) uses[a.value].writers.push_back(t);
  }
  // Ascending address order: which violation is reported first must not
  // depend on hash-table layout.
  std::vector<std::uint64_t> sorted_addrs;
  sorted_addrs.reserve(uses.size());
  for (const auto& [addr, use] : uses) sorted_addrs.push_back(addr);
  std::sort(sorted_addrs.begin(), sorted_addrs.end());
  for (const std::uint64_t addr : sorted_addrs) {
    const AddressUse& use = uses[addr];
    for (TxIndex w : use.writers) {
      for (TxIndex r : use.readers) {
        if (r == w) continue;  // a tx's own read-modify-write is internal
        if (schedule.sequence[r] >= schedule.sequence[w]) {
          return ValidationReport::Failure(
              "read " + Describe(r, schedule.sequence[r]) +
              " not before write " + Describe(w, schedule.sequence[w]) +
              " on " + ToString(Address(addr)));
        }
      }
    }
    for (std::size_t i = 0; i < use.writers.size(); ++i) {
      for (std::size_t j = i + 1; j < use.writers.size(); ++j) {
        const TxIndex a = use.writers[i];
        const TxIndex b = use.writers[j];
        if (schedule.sequence[a] == schedule.sequence[b]) {
          return ValidationReport::Failure(
              "write/write collision " + Describe(a, schedule.sequence[a]) +
              " vs " + Describe(b, schedule.sequence[b]) + " on " +
              ToString(Address(addr)));
        }
      }
    }
  }
  return {};
}

ValidationReport ValidateByReplay(const StateSnapshot& snapshot,
                                  std::span<const Transaction> txs,
                                  const Schedule& schedule,
                                  std::span<const ReadWriteSet> rwsets,
                                  ExecMode mode) {
  if (txs.size() != rwsets.size()) {
    return ValidationReport::Failure("txs/rwsets size mismatch");
  }

  // Serial order: ascending (sequence, index).
  std::vector<TxIndex> order;
  for (TxIndex t = 0; t < txs.size(); ++t) {
    if (!schedule.aborted[t]) order.push_back(t);
  }
  std::sort(order.begin(), order.end(), [&](TxIndex a, TxIndex b) {
    if (schedule.sequence[a] != schedule.sequence[b]) {
      return schedule.sequence[a] < schedule.sequence[b];
    }
    return a < b;
  });

  // Expected final overlay: the recorded snapshot-based writes, applied in
  // serial order (later sequence overwrites earlier).
  LoggedStateView::Overlay expected;
  for (TxIndex t : order) {
    const ReadWriteSet& rw = rwsets[t];
    for (std::size_t i = 0; i < rw.writes.size(); ++i) {
      expected[rw.writes[i].value] = rw.write_values[i];
    }
  }

  // Replay: each transaction re-executes against the evolving state.
  LoggedStateView::Overlay evolving;
  for (TxIndex t : order) {
    LoggedStateView view(snapshot, &evolving);
    if (mode == ExecMode::kNative) {
      if (Status s = ExecuteContract(txs[t].payload, view); !s.ok()) {
        return ValidationReport::Failure("replay execution failed: " +
                                         s.ToString());
      }
    } else {
      auto program = CompileContract(txs[t].payload);
      if (!program.ok()) {
        return ValidationReport::Failure("replay compile failed");
      }
      const VmOutcome outcome = RunProgram(program.value(), view);
      if (!outcome.status.ok()) {
        return ValidationReport::Failure("replay VM fault: " +
                                         outcome.status.ToString());
      }
    }
    ReadWriteSet rw = view.TakeRWSet();
    if (!rw.ok) {
      // A committed transaction must not revert when replayed serially:
      // the schedule guarantees its reads see the very snapshot values it
      // was simulated against.
      return ValidationReport::Failure(
          "committed tx " + Describe(t, schedule.sequence[t]) +
          " reverted during serial replay");
    }
    for (std::size_t i = 0; i < rw.writes.size(); ++i) {
      evolving[rw.writes[i].value] = rw.write_values[i];
    }
  }

  if (evolving.size() != expected.size()) {
    return ValidationReport::Failure(
        "replay wrote a different set of addresses");
  }
  for (const auto& [addr, value] : expected) {
    const auto it = evolving.find(addr);
    if (it == evolving.end()) {
      return ValidationReport::Failure("replay missed address " +
                                       ToString(Address(addr)));
    }
    if (it->second != value) {
      std::ostringstream out;
      out << "replay divergence at " << ToString(Address(addr)) << ": serial "
          << it->second << " vs scheduled " << value;
      return ValidationReport::Failure(out.str());
    }
  }
  return {};
}

}  // namespace nezha
