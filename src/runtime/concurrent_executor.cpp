#include "runtime/concurrent_executor.h"

#include <atomic>

#include "obs/profiler.h"

namespace nezha {
namespace {

ReadWriteSet SimulateOne(const StateSnapshot& snapshot, const Transaction& tx,
                         ExecMode mode, std::atomic<std::size_t>& malformed) {
  auto result = SimulateTransaction(snapshot, tx, mode);
  if (result.ok()) return std::move(result.value());
  malformed.fetch_add(1, std::memory_order_relaxed);
  ReadWriteSet failed;
  failed.ok = false;
  return failed;
}

}  // namespace

BatchExecutionResult ExecuteBatchConcurrent(ThreadPool& pool,
                                            const StateSnapshot& snapshot,
                                            std::span<const Transaction> txs,
                                            ExecMode mode) {
  BatchExecutionResult result;
  result.rwsets.resize(txs.size());
  std::atomic<std::size_t> malformed{0};
  // Explicit stage label: benches drive this executor without the node's
  // "execute" envelope, and the label is what the profiler attributes the
  // simulation tasks' CPU to.
  obs::StageScope stage("speculative_exec");
  pool.ParallelFor(0, txs.size(), [&](std::size_t i) {
    result.rwsets[i] = SimulateOne(snapshot, txs[i], mode, malformed);
  });
  result.malformed = malformed.load();
  return result;
}

BatchExecutionResult ExecuteBatchSerial(const StateSnapshot& snapshot,
                                        std::span<const Transaction> txs,
                                        ExecMode mode) {
  BatchExecutionResult result;
  result.rwsets.resize(txs.size());
  std::atomic<std::size_t> malformed{0};
  for (std::size_t i = 0; i < txs.size(); ++i) {
    result.rwsets[i] = SimulateOne(snapshot, txs[i], mode, malformed);
  }
  result.malformed = malformed.load();
  return result;
}

}  // namespace nezha
