#include "runtime/committer.h"

#include <algorithm>
#include <atomic>

#include "obs/profiler.h"

namespace nezha {

CommitStats CommitSchedule(ThreadPool& pool, StateDB& state,
                           const Schedule& schedule,
                           std::span<const ReadWriteSet> rwsets) {
  CommitStats stats;
  stats.groups = schedule.groups.size();
  std::atomic<std::size_t> writes{0};

  obs::StageScope stage("commit_groups");
  for (const auto& group : schedule.groups) {
    stats.committed_txs += group.size();
    stats.max_group = std::max(stats.max_group, group.size());
    if (group.size() == 1) {
      // Serial fast path: no dispatch overhead.
      const ReadWriteSet& rw = rwsets[group[0]];
      for (std::size_t i = 0; i < rw.writes.size(); ++i) {
        state.Set(rw.writes[i], rw.write_values[i]);
      }
      writes.fetch_add(rw.writes.size(), std::memory_order_relaxed);
      continue;
    }
    // Same-sequence transactions never conflict, so their writes can land
    // concurrently (StateDB's sharded locks make raw Set thread-safe).
    pool.ParallelFor(0, group.size(), [&](std::size_t i) {
      const ReadWriteSet& rw = rwsets[group[i]];
      for (std::size_t k = 0; k < rw.writes.size(); ++k) {
        state.Set(rw.writes[k], rw.write_values[k]);
      }
      writes.fetch_add(rw.writes.size(), std::memory_order_relaxed);
    });
  }
  stats.writes_applied = writes.load();
  return stats;
}

}  // namespace nezha
