// Grouped commitment — the paper's "commitment phase".
//
// Commit groups apply in ascending sequence order; within a group, the
// transactions are guaranteed conflict-free (Nezha's invariant), so their
// write sets apply to the state concurrently across the thread pool.
// Schemes that emit singleton groups (Serial order, CG, OCC) degenerate to
// serial commitment automatically.
#pragma once

#include <span>

#include "cc/scheduler.h"
#include "common/thread_pool.h"
#include "storage/state_db.h"
#include "vm/rwset.h"

namespace nezha {

struct CommitStats {
  std::size_t committed_txs = 0;
  std::size_t groups = 0;
  std::size_t writes_applied = 0;
  /// Size of the largest commit group (the schedule's peak commit
  /// concurrency).
  std::size_t max_group = 0;
};

/// Applies every committed transaction's recorded writes, group by group.
/// Does not flush; callers decide when to persist and hash.
CommitStats CommitSchedule(ThreadPool& pool, StateDB& state,
                           const Schedule& schedule,
                           std::span<const ReadWriteSet> rwsets);

}  // namespace nezha
