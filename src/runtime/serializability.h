// Offline serializability validation — the correctness oracle behind the
// property-test suite (DESIGN.md §6).
//
// A schedule over snapshot-simulated read/write sets is serializable iff it
// is equivalent to some serial execution of the committed transactions. For
// snapshot-based speculation that reduces to per-address structure:
//   * every committed reader of an address is sequenced strictly before
//     every committed writer of it (a later read would have observed the
//     write, but it read the snapshot);
//   * committed writers of one address have pairwise-distinct sequence
//     numbers (equal numbers commit concurrently — a write/write race);
//   * a transaction that both reads and writes an address is exempt from
//     comparing against itself.
// The replay check is the end-to-end variant: executing the committed
// transactions one-by-one, in (sequence, index) order, against an evolving
// state must land in exactly the state produced by applying the schedule's
// recorded write sets.
#pragma once

#include <span>
#include <string>

#include "cc/scheduler.h"
#include "ledger/transaction.h"
#include "storage/state_db.h"
#include "vm/executor.h"
#include "vm/rwset.h"

namespace nezha {

struct ValidationReport {
  bool ok = true;
  std::string violation;  ///< empty when ok

  static ValidationReport Failure(std::string why) {
    return {false, std::move(why)};
  }
};

/// Structural validation (per-address ordering rules + group consistency).
ValidationReport ValidateScheduleInvariants(
    const Schedule& schedule, std::span<const ReadWriteSet> rwsets);

/// End-to-end replay validation: serially re-executes the committed
/// transactions in schedule order against an evolving state and compares
/// the final state with the one the recorded write sets produce.
ValidationReport ValidateByReplay(const StateSnapshot& snapshot,
                                  std::span<const Transaction> txs,
                                  const Schedule& schedule,
                                  std::span<const ReadWriteSet> rwsets,
                                  ExecMode mode = ExecMode::kNative);

}  // namespace nezha
