// Serializability oracle — an independent checker for any Schedule
// (docs/ANALYSIS.md).
//
// The schedulers under src/cc each argue their own way that the commit order
// they emit is conflict-serializable: Nezha by hierarchical sorting
// (PAPER.md Algorithms 1-2), CG by cycle removal, OCC by validation. This
// verifier trusts none of those arguments. Given only the schedule and the
// transactions' read/write sets, it rebuilds the transaction-level
// precedence graph from first principles — NOT the paper's address-based
// ACG; the edges here are derived per conflicting transaction pair:
//   * r->w: a committed reader of an address precedes every committed
//     writer of it (the reader observed the pre-epoch snapshot);
//   * w->w: committed writers of an address, in ascending sequence order
//     (the commit phase applies writes in that order, so any equivalent
//     serial execution must too).
// Acyclicity is proven with Tarjan SCC from src/graph, and the verifier
// exhibits an explicit equivalent serial order (the witness) plus a direct
// proof that every precedence edge goes forward in it. On violation it
// reports a minimal counterexample: the offending cycle and the
// transactions/addresses on it, or the invariant-breaking pair.
//
// Nezha-specific schedule invariants are checked on top of the graph:
//   * reads-before-writes per address (strictly smaller sequence numbers);
//   * per-address writer sequence uniqueness (equal numbers commit
//     concurrently — a write/write race);
//   * §IV.D reordered transactions committed and landing strictly above
//     every committed reader of each address they write;
//   * aborted transactions absent from the commit order;
//   * groups exactly mirroring (sequence, aborted).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "cc/scheduler.h"
#include "common/types.h"
#include "vm/rwset.h"

namespace nezha::analysis {

enum class ViolationKind {
  kNone = 0,
  kMalformedSchedule,   ///< sequence/aborted/groups shape inconsistency
  kAbortedInOrder,      ///< aborted tx carries a sequence number / sits in a group
  kPrecedenceCycle,     ///< precedence graph has a directed cycle
  kReadAfterWrite,      ///< committed reader sequenced at/after a writer
  kWriterSeqCollision,  ///< two committed writers of one address share a seq
  kReorderViolation,    ///< §IV.D reordered tx broke the landing rule
  kWitnessBroken,       ///< an edge goes backward in the witness order
};

const char* ViolationKindName(ViolationKind kind);

/// The minimal evidence of a violation: for a cycle, the transactions along
/// it (in edge order, txs.front() == txs.back() conceptually closed) and one
/// address per edge inducing it; for pairwise violations, the two
/// transactions and the address they clash on.
struct Counterexample {
  ViolationKind kind = ViolationKind::kNone;
  std::vector<TxIndex> txs;
  std::vector<Address> addresses;
  std::string detail;  ///< one-line human-readable diagnosis

  std::string ToString() const;
};

struct VerifierOptions {
  /// True for snapshot-speculation schedulers (nezha/occ/cg): every read
  /// observed the pre-epoch snapshot, so the full precedence-graph oracle
  /// applies. False for evolving-state execution (serial): any total order
  /// with distinct sequence numbers IS a serial execution, so only the
  /// shape invariants are checked.
  bool snapshot_semantics = true;
  /// Transactions the scheduler re-seated via the §IV.D reordering
  /// enhancement (Schedule::reordered); checked against the landing rule.
  std::span<const TxIndex> reordered = {};
};

struct VerifyReport {
  bool ok = true;
  Counterexample counterexample;  ///< kind == kNone when ok
  /// The equivalent serial order over committed transactions — the witness
  /// that the schedule is serializable. Every precedence edge has been
  /// checked to go forward in it.
  std::vector<TxIndex> witness;
  std::size_t graph_vertices = 0;  ///< committed transactions
  std::size_t graph_edges = 0;     ///< derived precedence edges

  static VerifyReport Failure(Counterexample c) {
    VerifyReport r;
    r.ok = false;
    r.counterexample = std::move(c);
    return r;
  }
};

/// Verifies one schedule against the read/write sets that produced it.
/// Runs in O(V + E + sum of rwset sizes) after the per-address bucketing.
VerifyReport VerifySchedule(const Schedule& schedule,
                            std::span<const ReadWriteSet> rwsets,
                            const VerifierOptions& options = {});

}  // namespace nezha::analysis
