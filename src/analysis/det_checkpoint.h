// Determinism checkpoints — stage-level divergence localization
// (docs/ANALYSIS.md "Determinism auditor").
//
// Every pinned property of this reproduction bottoms out in determinism:
// Algorithm 2 ranks must yield the same schedule on every replica, the
// parallel pipeline promises byte-identical output at any thread/shard
// count, and the convergence harness asserts replicas reach identical state
// roots. Until now that was only checked end-to-end: a break surfaced as an
// opaque final-root mismatch. This recorder computes a canonical SHA-256
// digest at each pipeline stage boundary —
//
//   kConsensus  committed block/vertex order leaving a consensus sim
//   kAcg        ACG vertex set, subscripts, readers/writers, edge multiset
//   kRank       Algorithm 1 sorting-rank order over the ACG addresses
//   kSort       schedule: per-tx sequence numbers, abort set, groups,
//               §IV.D reorders (Algorithm 2 output)
//   kExecute    merged write buffer (address -> value) + per-group commits
//   kCommit     state root, receipt root, commit-batch byte digest
//
// — and stores the digests in a bounded per-epoch ring (alongside the
// flight recorder's). Two runs of the same seed at different configurations
// (1 vs N threads, serial vs sharded ACG, different shard counts) can then
// be diffed checkpoint-by-checkpoint: DiffCheckpoints reports the FIRST
// stage whose digest diverges, and — when capture mode retained the
// canonical encodings — the first differing line of the offending stage,
// turning "roots differ" into "sort stage, tx 402: seq 17 vs 19".
//
// Digests are computed over *canonical encodings*: deterministic,
// newline-separated text serializations produced next to the data they
// describe (AddressConflictGraph::CanonicalEncoding, CanonicalRankEncoding,
// CanonicalScheduleEncoding, ...). This header deliberately takes only
// strings: src/cc links src/analysis (for the serializability oracle), so
// the encoders live with their data and this recorder stays layer-free.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/sha256.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace nezha::analysis {

/// Pipeline stage boundaries, in pipeline order. kConsensus is upstream of
/// the scheduling pipeline (recorded by the consensus sims); the five
/// following stages are the determinism-matrix boundaries.
enum class DetStage : std::uint8_t {
  kConsensus = 0,
  kAcg,
  kRank,
  kSort,
  kExecute,
  kCommit,
};
inline constexpr std::size_t kNumDetStages = 6;

const char* DetStageName(DetStage stage);

/// One epoch's checkpoints: a digest per recorded stage, plus the canonical
/// encodings when capture mode is on.
struct EpochCheckpoints {
  EpochId epoch = 0;
  std::string scheme;
  std::array<Hash256, kNumDetStages> digest{};
  std::array<bool, kNumDetStages> present{};
  std::array<std::string, kNumDetStages> canonical{};  ///< capture mode only

  bool Has(DetStage stage) const {
    return present[static_cast<std::size_t>(stage)];
  }
  const Hash256& Digest(DetStage stage) const {
    return digest[static_cast<std::size_t>(stage)];
  }
  const std::string& Canonical(DetStage stage) const {
    return canonical[static_cast<std::size_t>(stage)];
  }
};

/// Lock-protected bounded ring of per-epoch checkpoint records. Recording is
/// cheap (one SHA-256 over the canonical encoding, a few µs per stage) and
/// off the commit critical path; the NEZHA_DET_CHECKPOINTS toggle gates it
/// like the serializability oracle (on in !NDEBUG, off in release).
class DetCheckpointRecorder {
 public:
  static DetCheckpointRecorder& Global();

  explicit DetCheckpointRecorder(std::size_t capacity = 256);

  /// Resolution order: SetEnabled override, else NEZHA_DET_CHECKPOINTS env
  /// ("0"/"false"/"off" disables, anything else enables; read once), else on
  /// in debug builds (NDEBUG not defined), off in release.
  bool enabled() const;
  /// Programmatic override; std::nullopt falls back to env/build-type.
  void SetEnabled(std::optional<bool> enabled);

  /// When on, Record retains the canonical encoding next to its digest so
  /// DiffCheckpoints can produce a structured line diff (the replay differ
  /// and the determinism tests turn this on; it is off by default because
  /// encodings are O(epoch size)).
  void SetCapture(bool capture);
  bool capture() const;

  /// Opens the record for `epoch`; subsequent Record calls land in it. An
  /// epoch re-opened under the same (epoch, scheme) key reuses its slot so
  /// multi-phase pipelines accumulate one record per epoch. Also binds the
  /// CALLING thread to (epoch, scheme) — see BindThread.
  void BeginEpoch(EpochId epoch, std::string_view scheme);

  /// Binds the calling thread's Record calls to the (epoch, scheme) slot,
  /// regardless of which epoch was opened last. The cross-epoch pipeline
  /// needs this: the commit thread records epoch N's kExecute/kCommit while
  /// the prepare thread has already opened (and bound itself to) epoch N+1 —
  /// without the binding, N's records would land in N+1's slot. A bound
  /// Record whose slot was shed from the ring is a no-op. Bindings are
  /// invalidated by Clear().
  void BindThread(EpochId epoch, std::string_view scheme);
  /// Drops the calling thread's binding (falls back to the last-opened
  /// epoch, the pre-pipelining behaviour).
  void UnbindThread();

  /// Digests `canonical` into the current epoch's `stage` slot. No-op when
  /// disabled or when no epoch is open (e.g. scheduler unit tests building
  /// schedules outside any pipeline). Re-recording a stage overwrites it
  /// (retries recompute the same bytes when the pipeline is deterministic —
  /// which is exactly what the auditor exists to prove).
  void Record(DetStage stage, std::string_view canonical);

  /// Test hook: XOR a marker into every subsequent digest recorded for
  /// `stage`, simulating a stage-local nondeterminism bug without touching
  /// the pipeline. std::nullopt clears. The mutation test uses this to prove
  /// an injected perturbation is localized to the right first checkpoint.
  void PerturbStageForTest(std::optional<DetStage> stage);

  /// All retained epoch records, ascending epoch order (ring order).
  std::vector<EpochCheckpoints> Snapshot() const;

  /// The retained record for `epoch`, if still in the ring.
  std::optional<EpochCheckpoints> Find(EpochId epoch,
                                       std::string_view scheme = {}) const;

  void Clear();

 private:
  mutable Mutex mutex_;
  std::size_t capacity_;
  std::vector<EpochCheckpoints> ring_ GUARDED_BY(mutex_);
  std::size_t open_ GUARDED_BY(mutex_) = SIZE_MAX;  ///< index into ring_
  /// Bumped by Clear(); thread bindings stamped with an older generation are
  /// stale and ignored (Record falls back to the open_ cursor).
  std::uint64_t generation_ GUARDED_BY(mutex_) = 1;
  std::optional<bool> enabled_override_ GUARDED_BY(mutex_);
  bool capture_ GUARDED_BY(mutex_) = false;
  std::optional<DetStage> perturb_ GUARDED_BY(mutex_);
};

/// Result of comparing two runs' checkpoints (analysis::DiffCheckpoints).
struct DivergenceReport {
  bool diverged = false;
  EpochId epoch = 0;          ///< first divergent epoch
  DetStage stage = DetStage::kConsensus;  ///< first divergent stage
  /// First differing canonical line (1-based; 0 when encodings were not
  /// captured and only digests were compared).
  std::size_t line = 0;
  std::string line_a;  ///< the offending line on side A ("<missing>" if short)
  std::string line_b;
  std::string summary;  ///< human-readable one-liner

  /// Stages whose digests matched before the divergence (evidence that the
  /// break is stage-local, not upstream).
  std::vector<DetStage> matched_stages;
};

/// Compares two runs epoch-by-epoch, stage-by-stage (pipeline order), and
/// reports the FIRST divergence. Epochs are matched by id; an epoch present
/// on one side only is itself a divergence. Stages recorded on only one
/// side are skipped (e.g. serial scheme records no kAcg).
DivergenceReport DiffCheckpoints(const std::vector<EpochCheckpoints>& a,
                                 const std::vector<EpochCheckpoints>& b);

/// First differing line of two canonical encodings (helper for the differ
/// and its tests). Returns 1-based line number, 0 if equal.
std::size_t FirstDifferingLine(std::string_view a, std::string_view b,
                               std::string* line_a, std::string* line_b);

}  // namespace nezha::analysis
