#include "analysis/schedule_verifier.h"

#include <algorithm>
#include <unordered_map>

#include "graph/digraph.h"
#include "graph/tarjan.h"

namespace nezha::analysis {
namespace {

/// Readers/writers of one address, committed transactions only.
struct AddressAccess {
  std::vector<TxIndex> readers;
  std::vector<TxIndex> writers;
};

std::string TxName(TxIndex t) { return "T" + std::to_string(t); }

Counterexample Pair(ViolationKind kind, TxIndex a, TxIndex b, Address addr,
                    std::string detail) {
  Counterexample c;
  c.kind = kind;
  c.txs = {a, b};
  c.addresses = {addr};
  c.detail = std::move(detail);
  return c;
}

Counterexample Malformed(std::string detail) {
  Counterexample c;
  c.kind = ViolationKind::kMalformedSchedule;
  c.detail = std::move(detail);
  return c;
}

/// Walks one size>1 SCC and returns an explicit directed cycle inside it
/// (vertices in edge order; the edge from back() to front() closes it).
std::vector<Digraph::Vertex> ExtractCycle(
    const Digraph& g, const std::vector<Digraph::Vertex>& scc) {
  std::vector<bool> in_scc(g.NumVertices(), false);
  for (Digraph::Vertex v : scc) in_scc[v] = true;

  // Follow arbitrary in-SCC successors until a vertex repeats; every vertex
  // of a strongly connected subgraph has such a successor, so the walk
  // closes in at most |scc| steps.
  std::vector<int> pos_on_path(g.NumVertices(), -1);
  std::vector<Digraph::Vertex> path;
  Digraph::Vertex v = scc[0];
  for (;;) {
    if (pos_on_path[v] >= 0) {
      return {path.begin() + pos_on_path[v], path.end()};
    }
    pos_on_path[v] = static_cast<int>(path.size());
    path.push_back(v);
    for (Digraph::Vertex w : g.OutNeighbors(v)) {
      if (in_scc[w]) {
        v = w;
        break;
      }
    }
  }
}

}  // namespace

const char* ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kNone:
      return "none";
    case ViolationKind::kMalformedSchedule:
      return "malformed-schedule";
    case ViolationKind::kAbortedInOrder:
      return "aborted-in-order";
    case ViolationKind::kPrecedenceCycle:
      return "precedence-cycle";
    case ViolationKind::kReadAfterWrite:
      return "read-after-write";
    case ViolationKind::kWriterSeqCollision:
      return "writer-seq-collision";
    case ViolationKind::kReorderViolation:
      return "reorder-violation";
    case ViolationKind::kWitnessBroken:
      return "witness-broken";
  }
  return "?";
}

std::string Counterexample::ToString() const {
  std::string out = ViolationKindName(kind);
  if (kind == ViolationKind::kPrecedenceCycle && !txs.empty()) {
    out += ": ";
    for (std::size_t i = 0; i < txs.size(); ++i) {
      const Address via =
          i < addresses.size() ? addresses[i] : Address(0);
      out += TxName(txs[i]) + " -[" + nezha::ToString(via) + "]-> ";
    }
    out += TxName(txs[0]);
  }
  if (!detail.empty()) {
    out += out.empty() ? detail : (": " + detail);
  }
  return out;
}

VerifyReport VerifySchedule(const Schedule& schedule,
                            std::span<const ReadWriteSet> rwsets,
                            const VerifierOptions& options) {
  const std::size_t n = rwsets.size();

  // ---- Shape: sequence/aborted/groups must agree with each other and with
  // the rwsets that produced them. ----
  if (schedule.sequence.size() != n || schedule.aborted.size() != n) {
    return VerifyReport::Failure(Malformed(
        "schedule covers " + std::to_string(schedule.sequence.size()) + "/" +
        std::to_string(schedule.aborted.size()) + " txs, batch has " +
        std::to_string(n)));
  }
  for (TxIndex t = 0; t < n; ++t) {
    if (schedule.aborted[t]) {
      if (schedule.sequence[t] != kUnassignedSeq) {
        Counterexample c;
        c.kind = ViolationKind::kAbortedInOrder;
        c.txs = {t};
        c.detail = TxName(t) + " is aborted but carries sequence number " +
                   std::to_string(schedule.sequence[t]);
        return VerifyReport::Failure(std::move(c));
      }
    } else {
      if (!rwsets[t].ok) {
        Counterexample c;
        c.kind = ViolationKind::kAbortedInOrder;
        c.txs = {t};
        c.detail = TxName(t) + " reverted at the application level but is "
                              "not marked aborted";
        return VerifyReport::Failure(std::move(c));
      }
      if (schedule.sequence[t] == kUnassignedSeq) {
        return VerifyReport::Failure(Malformed(
            TxName(t) + " is committed but has no sequence number"));
      }
    }
  }

  // Groups must be exactly the committed txs bucketed by sequence number,
  // ascending, with ascending member indices.
  {
    std::size_t grouped = 0;
    SeqNum prev_seq = 0;
    std::vector<bool> seen(n, false);
    for (const auto& group : schedule.groups) {
      if (group.empty()) {
        return VerifyReport::Failure(Malformed("empty commit group"));
      }
      const SeqNum seq = schedule.sequence[group[0]];
      if (seq <= prev_seq) {
        return VerifyReport::Failure(Malformed(
            "commit groups out of ascending sequence order at seq " +
            std::to_string(seq)));
      }
      prev_seq = seq;
      TxIndex prev_tx = 0;
      bool first = true;
      for (TxIndex t : group) {
        if (t >= n || seen[t]) {
          return VerifyReport::Failure(
              Malformed(TxName(t) + " out of range or in two groups"));
        }
        seen[t] = true;
        ++grouped;
        if (schedule.aborted[t]) {
          Counterexample c;
          c.kind = ViolationKind::kAbortedInOrder;
          c.txs = {t};
          c.detail = TxName(t) + " is aborted but appears in a commit group";
          return VerifyReport::Failure(std::move(c));
        }
        if (schedule.sequence[t] != seq) {
          return VerifyReport::Failure(Malformed(
              TxName(t) + " has seq " + std::to_string(schedule.sequence[t]) +
              " inside the seq-" + std::to_string(seq) + " group"));
        }
        if (!first && t <= prev_tx) {
          return VerifyReport::Failure(Malformed(
              "group members out of ascending index order at " + TxName(t)));
        }
        prev_tx = t;
        first = false;
      }
    }
    std::size_t committed = 0;
    for (TxIndex t = 0; t < n; ++t) committed += schedule.aborted[t] ? 0 : 1;
    if (grouped != committed) {
      return VerifyReport::Failure(Malformed(
          std::to_string(committed) + " committed txs but " +
          std::to_string(grouped) + " grouped"));
    }
  }

  // ---- Per-address access lists over committed transactions (our own
  // derivation straight from the rwsets — deliberately NOT the ACG's). ----
  std::unordered_map<Address, AddressAccess> accesses;
  for (TxIndex t = 0; t < n; ++t) {
    if (schedule.aborted[t]) continue;
    for (const Address a : rwsets[t].reads) accesses[a].readers.push_back(t);
    for (const Address a : rwsets[t].writes) accesses[a].writers.push_back(t);
  }
  // Iterate the map in ascending address order everywhere below. The map
  // itself is unordered, and which address we visit first decides (a) edge
  // insertion order in the precedence graph — and with it which explicit
  // cycle ExtractCycle walks — and (b) which pairwise violation becomes THE
  // counterexample. Verifier output must not depend on hash-table layout.
  std::vector<Address> sorted_addresses;
  sorted_addresses.reserve(accesses.size());
  for (const auto& [addr, access] : accesses) sorted_addresses.push_back(addr);
  std::sort(sorted_addresses.begin(), sorted_addresses.end());

  if (!options.snapshot_semantics) {
    // Evolving-state execution: each transaction sees all earlier effects,
    // so any total order IS a serial execution. Distinct sequence numbers
    // for conflicting transactions are still required (equal numbers commit
    // concurrently).
    for (const Address addr : sorted_addresses) {
      AddressAccess& access = accesses[addr];
      auto& writers = access.writers;
      std::sort(writers.begin(), writers.end(),
                [&](TxIndex x, TxIndex y) {
                  return schedule.sequence[x] < schedule.sequence[y];
                });
      for (std::size_t i = 1; i < writers.size(); ++i) {
        if (schedule.sequence[writers[i - 1]] ==
            schedule.sequence[writers[i]]) {
          return VerifyReport::Failure(Pair(
              ViolationKind::kWriterSeqCollision, writers[i - 1], writers[i],
              addr,
              TxName(writers[i - 1]) + " and " + TxName(writers[i]) +
                  " both write " + nezha::ToString(addr) +
                  " at sequence number " +
                  std::to_string(schedule.sequence[writers[i]])));
        }
      }
    }
    VerifyReport report;
    report.graph_vertices = schedule.NumCommitted();
    for (const auto& group : schedule.groups) {
      for (TxIndex t : group) report.witness.push_back(t);
    }
    return report;
  }

  // ---- Precedence graph over committed transactions, checked FIRST: an
  // inherent cycle (no serial order exists at all) is the strongest
  // counterexample, so it takes precedence over the pairwise sequence-number
  // invariants below. Note the r->w edges do not depend on the sequence
  // numbers at all — only the w->w chains do. ----
  std::vector<Digraph::Vertex> to_dense(n, 0);
  std::vector<TxIndex> to_tx;
  for (TxIndex t = 0; t < n; ++t) {
    if (schedule.aborted[t]) continue;
    to_dense[t] = static_cast<Digraph::Vertex>(to_tx.size());
    to_tx.push_back(t);
  }
  Digraph graph(to_tx.size());
  for (const Address addr : sorted_addresses) {
    AddressAccess& access = accesses[addr];
    std::sort(access.writers.begin(), access.writers.end(),
              [&](TxIndex x, TxIndex y) {
                return schedule.sequence[x] != schedule.sequence[y]
                           ? schedule.sequence[x] < schedule.sequence[y]
                           : x < y;
              });
    for (const TxIndex r : access.readers) {
      for (const TxIndex w : access.writers) {
        if (r == w) continue;
        graph.AddEdge(to_dense[r], to_dense[w], /*deduplicate=*/true);
      }
    }
    // Chain the writers in ascending (sequence, index) order.
    for (std::size_t i = 1; i < access.writers.size(); ++i) {
      graph.AddEdge(to_dense[access.writers[i - 1]],
                    to_dense[access.writers[i]], /*deduplicate=*/true);
    }
  }

  // Tarjan SCC proves acyclicity; any component of size > 1 contains an
  // explicit cycle we hand back as the counterexample.
  for (const auto& scc : TarjanSCC(graph)) {
    if (scc.size() <= 1) continue;
    const std::vector<Digraph::Vertex> cycle = ExtractCycle(graph, scc);
    Counterexample c;
    c.kind = ViolationKind::kPrecedenceCycle;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      const TxIndex u = to_tx[cycle[i]];
      const TxIndex v = to_tx[cycle[(i + 1) % cycle.size()]];
      c.txs.push_back(u);
      // Find one address inducing u -> v: u reads/writes something v writes.
      Address via(0);
      for (const Address a : rwsets[v].writes) {
        if (rwsets[u].ReadsAddress(a) || rwsets[u].WritesAddress(a)) {
          via = a;
          break;
        }
      }
      c.addresses.push_back(via);
    }
    c.detail = "cycle through " + std::to_string(cycle.size()) +
               " transactions; no serial order can satisfy all edges";
    return VerifyReport::Failure(std::move(c));
  }

  // ---- Pairwise sequence-number invariants, per address. ----
  for (const Address addr : sorted_addresses) {
    const AddressAccess& access = accesses[addr];
    // Reads-before-writes: every committed reader strictly precedes every
    // committed writer (a read sequenced later would have observed the
    // write, but it read the pre-epoch snapshot). A read-modify-write
    // transaction is exempt from comparing against itself.
    for (const TxIndex w : access.writers) {
      for (const TxIndex r : access.readers) {
        if (r == w) continue;
        if (schedule.sequence[w] <= schedule.sequence[r]) {
          return VerifyReport::Failure(Pair(
              ViolationKind::kReadAfterWrite, r, w, addr,
              TxName(r) + " reads " + nezha::ToString(addr) +
                  " at seq " + std::to_string(schedule.sequence[r]) +
                  " but " + TxName(w) + " writes it at seq " +
                  std::to_string(schedule.sequence[w])));
        }
      }
    }

    // Writer uniqueness: equal sequence numbers commit concurrently, so two
    // writers of one address sharing a number is a write/write race. The
    // writers are already in (sequence, index) order.
    for (std::size_t i = 1; i < access.writers.size(); ++i) {
      if (schedule.sequence[access.writers[i - 1]] ==
          schedule.sequence[access.writers[i]]) {
        return VerifyReport::Failure(Pair(
            ViolationKind::kWriterSeqCollision, access.writers[i - 1],
            access.writers[i], addr,
            TxName(access.writers[i - 1]) + " and " +
                TxName(access.writers[i]) + " both write " +
                nezha::ToString(addr) + " at sequence number " +
                std::to_string(schedule.sequence[access.writers[i]])));
      }
    }
  }

  // ---- §IV.D reorder landing rule: a re-seated transaction must be
  // committed and sit strictly above every other committed reader of each
  // address it writes (the post-hoc form of "max(seq)+1 at raise time";
  // later writers may legally land even higher). ----
  for (const TxIndex t : options.reordered) {
    if (t >= n) {
      return VerifyReport::Failure(
          Malformed("reordered tx " + TxName(t) + " out of range"));
    }
    if (schedule.aborted[t]) {
      Counterexample c;
      c.kind = ViolationKind::kReorderViolation;
      c.txs = {t};
      c.detail = TxName(t) + " was reordered and then aborted";
      return VerifyReport::Failure(std::move(c));
    }
    for (const Address a : rwsets[t].writes) {
      const auto it = accesses.find(a);
      if (it == accesses.end()) continue;
      for (const TxIndex r : it->second.readers) {
        if (r == t) continue;
        if (schedule.sequence[t] <= schedule.sequence[r]) {
          return VerifyReport::Failure(Pair(
              ViolationKind::kReorderViolation, t, r, a,
              "reordered " + TxName(t) + " landed at seq " +
                  std::to_string(schedule.sequence[t]) +
                  ", not above reader " + TxName(r) + " (seq " +
                  std::to_string(schedule.sequence[r]) + ") of " +
                  nezha::ToString(a)));
        }
      }
    }
  }

  // ---- Witness: committed transactions in (sequence, index) order, with a
  // direct proof that every precedence edge goes forward in it. ----
  VerifyReport report;
  report.graph_vertices = graph.NumVertices();
  report.graph_edges = graph.NumEdges();
  report.witness.reserve(to_tx.size());
  for (const auto& group : schedule.groups) {
    for (TxIndex t : group) report.witness.push_back(t);
  }
  std::vector<std::size_t> witness_pos(n, 0);
  for (std::size_t i = 0; i < report.witness.size(); ++i) {
    witness_pos[report.witness[i]] = i;
  }
  for (Digraph::Vertex u = 0; u < graph.NumVertices(); ++u) {
    for (const Digraph::Vertex v : graph.OutNeighbors(u)) {
      if (witness_pos[to_tx[u]] >= witness_pos[to_tx[v]]) {
        return VerifyReport::Failure(Pair(
            ViolationKind::kWitnessBroken, to_tx[u], to_tx[v], Address(0),
            "edge " + TxName(to_tx[u]) + " -> " + TxName(to_tx[v]) +
                " goes backward in the (sequence, index) witness order"));
      }
    }
  }
  return report;
}

}  // namespace nezha::analysis
