#include "analysis/schedule_mutator.h"

#include <algorithm>

#include "common/rng.h"

namespace nezha::analysis {
namespace {

/// A committed (reader, writer, address) conflict triple.
struct RwTarget {
  TxIndex reader;
  TxIndex writer;
  Address address;
};

/// Two committed writers of one address.
struct WwTarget {
  TxIndex first;
  TxIndex second;
  Address address;
};

/// An aborted transaction plus a committed conflict partner to seat it on
/// (kInvalidTx when the rwset itself is reverted — that alone rejects).
struct AbortTarget {
  TxIndex tx;
  TxIndex partner;
  SeqNum partner_seq;
};

struct Targets {
  std::vector<RwTarget> rw;
  std::vector<WwTarget> ww;
  std::vector<AbortTarget> aborted;
  std::vector<TxIndex> committed;
};

Targets CollectTargets(const Schedule& schedule,
                       std::span<const ReadWriteSet> rwsets) {
  Targets targets;
  std::unordered_map<Address, std::vector<TxIndex>> readers;
  std::unordered_map<Address, std::vector<TxIndex>> writers;
  for (TxIndex t = 0; t < rwsets.size(); ++t) {
    if (schedule.aborted[t]) continue;
    targets.committed.push_back(t);
    for (const Address a : rwsets[t].reads) readers[a].push_back(t);
    for (const Address a : rwsets[t].writes) writers[a].push_back(t);
  }
  // Visit written addresses in ascending order: the unordered_map's layout
  // must not decide how targets.rw/ww are numbered, or the seeded RNG below
  // picks different mutations on different platforms/library versions.
  std::vector<Address> written;
  written.reserve(writers.size());
  for (const auto& [addr, ws] : writers) written.push_back(addr);
  std::sort(written.begin(), written.end());
  for (const Address addr : written) {
    const std::vector<TxIndex>& ws = writers[addr];
    const auto it = readers.find(addr);
    if (it != readers.end()) {
      for (const TxIndex w : ws) {
        for (const TxIndex r : it->second) {
          if (r != w) targets.rw.push_back({r, w, addr});
        }
      }
    }
    for (std::size_t i = 1; i < ws.size(); ++i) {
      targets.ww.push_back({ws[i - 1], ws[i], addr});
    }
  }
  for (TxIndex t = 0; t < rwsets.size(); ++t) {
    if (!schedule.aborted[t]) continue;
    if (!rwsets[t].ok) {
      targets.aborted.push_back({t, kInvalidTx, 0});
      continue;
    }
    // Seat the resurrected tx exactly on a committed accessor of an address
    // it writes: colliding with a writer or tying a reader is a guaranteed
    // violation.
    for (const Address a : rwsets[t].writes) {
      const auto wit = writers.find(a);
      if (wit != writers.end() && !wit->second.empty()) {
        const TxIndex p = wit->second.front();
        targets.aborted.push_back({t, p, schedule.sequence[p]});
        break;
      }
      const auto rit = readers.find(a);
      if (rit != readers.end() && !rit->second.empty()) {
        const TxIndex p = rit->second.front();
        targets.aborted.push_back({t, p, schedule.sequence[p]});
        break;
      }
    }
  }
  return targets;
}

std::string TxName(TxIndex t) { return "T" + std::to_string(t); }

}  // namespace

std::vector<Mutation> MutateSchedule(const Schedule& schedule,
                                     std::span<const ReadWriteSet> rwsets,
                                     std::uint64_t seed, std::size_t count) {
  const Targets targets = CollectTargets(schedule, rwsets);
  Rng rng(seed);
  std::vector<Mutation> out;
  out.reserve(count);

  // Round-robin over the eligible mutation families so a sweep exercises
  // every rejection path, with seeded target choice inside each family.
  for (std::size_t i = 0; out.size() < count; ++i) {
    const std::size_t family = i % 5;
    Mutation m;
    m.schedule = schedule;
    switch (family) {
      case 0: {  // merge: writer's number pulled down onto a reader's
        if (targets.rw.empty()) break;
        const RwTarget& t = targets.rw[rng.Below(targets.rw.size())];
        m.schedule.sequence[t.writer] = m.schedule.sequence[t.reader];
        m.schedule.RebuildGroups();
        m.expected = {ViolationKind::kReadAfterWrite,
                      ViolationKind::kWriterSeqCollision,
                      ViolationKind::kPrecedenceCycle};
        m.description = "merge " + TxName(t.writer) + " down to " +
                        TxName(t.reader) + "'s seq on " + ToString(t.address);
        out.push_back(std::move(m));
        continue;
      }
      case 1: {  // swap a reader/writer pair
        if (targets.rw.empty()) break;
        const RwTarget& t = targets.rw[rng.Below(targets.rw.size())];
        std::swap(m.schedule.sequence[t.reader],
                  m.schedule.sequence[t.writer]);
        m.schedule.RebuildGroups();
        m.expected = {ViolationKind::kReadAfterWrite,
                      ViolationKind::kWriterSeqCollision,
                      ViolationKind::kPrecedenceCycle};
        m.description = "swap seqs of reader " + TxName(t.reader) +
                        " and writer " + TxName(t.writer) + " on " +
                        ToString(t.address);
        out.push_back(std::move(m));
        continue;
      }
      case 2: {  // collide two writers of one address
        if (targets.ww.empty()) break;
        const WwTarget& t = targets.ww[rng.Below(targets.ww.size())];
        m.schedule.sequence[t.second] = m.schedule.sequence[t.first];
        m.schedule.RebuildGroups();
        m.expected = {ViolationKind::kWriterSeqCollision,
                      ViolationKind::kReadAfterWrite,
                      ViolationKind::kPrecedenceCycle};
        m.description = "collide writers " + TxName(t.first) + " and " +
                        TxName(t.second) + " on " + ToString(t.address);
        out.push_back(std::move(m));
        continue;
      }
      case 3: {  // resurrect an aborted transaction
        if (targets.aborted.empty()) break;
        const AbortTarget& t =
            targets.aborted[rng.Below(targets.aborted.size())];
        m.schedule.aborted[t.tx] = false;
        m.schedule.sequence[t.tx] =
            t.partner == kInvalidTx ? 1 : t.partner_seq;
        m.schedule.RebuildGroups();
        m.expected = {ViolationKind::kAbortedInOrder,
                      ViolationKind::kReadAfterWrite,
                      ViolationKind::kWriterSeqCollision,
                      ViolationKind::kPrecedenceCycle};
        m.description = "resurrect aborted " + TxName(t.tx);
        out.push_back(std::move(m));
        continue;
      }
      case 4: {  // tamper with the commit groups directly
        if (targets.committed.empty() || m.schedule.groups.size() < 2) break;
        const TxIndex t =
            targets.committed[rng.Below(targets.committed.size())];
        // Duplicate t into some other group: the groups now lie about
        // (sequence, aborted).
        for (auto& group : m.schedule.groups) {
          if (m.schedule.sequence[group[0]] != m.schedule.sequence[t]) {
            group.push_back(t);
            break;
          }
        }
        m.expected = {ViolationKind::kMalformedSchedule};
        m.description = "duplicate " + TxName(t) + " into a foreign group";
        out.push_back(std::move(m));
        continue;
      }
      default:
        break;
    }
    // Family had no eligible target; if none do, stop rather than spin.
    if (targets.rw.empty() && targets.ww.empty() && targets.aborted.empty() &&
        (targets.committed.empty() || schedule.groups.size() < 2)) {
      break;
    }
  }
  return out;
}

}  // namespace nezha::analysis
