#include "analysis/det_checkpoint.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "obs/metrics.h"

namespace nezha::analysis {
namespace {

bool EnvDefault() {
  static const bool kResolved = [] {
    const char* env = std::getenv("NEZHA_DET_CHECKPOINTS");
    if (env != nullptr) {
      const std::string_view v(env);
      return !(v == "0" || v == "false" || v == "off");
    }
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
  }();
  return kResolved;
}

// Per-thread routing of Record calls to a specific (epoch, scheme) slot.
// The cross-epoch pipeline has two epochs open at once (commit thread on N,
// prepare thread on N+1); without a binding, whichever thread called
// BeginEpoch last would steal the other's records. Owner + generation guard
// against bindings outliving their recorder's contents (Clear) or leaking
// across distinct recorder instances (unit tests construct local ones).
struct ThreadBinding {
  const void* owner = nullptr;
  std::uint64_t generation = 0;
  EpochId epoch = 0;
  std::string scheme;
  bool bound = false;
};
thread_local ThreadBinding t_det_binding;

}  // namespace

const char* DetStageName(DetStage stage) {
  switch (stage) {
    case DetStage::kConsensus:
      return "consensus";
    case DetStage::kAcg:
      return "acg";
    case DetStage::kRank:
      return "rank";
    case DetStage::kSort:
      return "sort";
    case DetStage::kExecute:
      return "execute";
    case DetStage::kCommit:
      return "commit";
  }
  return "?";
}

DetCheckpointRecorder& DetCheckpointRecorder::Global() {
  static DetCheckpointRecorder* recorder =
      new DetCheckpointRecorder();  // never freed
  return *recorder;
}

DetCheckpointRecorder::DetCheckpointRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool DetCheckpointRecorder::enabled() const {
  {
    MutexLock lock(mutex_);
    if (enabled_override_.has_value()) return *enabled_override_;
  }
  return EnvDefault();
}

void DetCheckpointRecorder::SetEnabled(std::optional<bool> enabled) {
  MutexLock lock(mutex_);
  enabled_override_ = enabled;
}

void DetCheckpointRecorder::SetCapture(bool capture) {
  MutexLock lock(mutex_);
  capture_ = capture;
}

bool DetCheckpointRecorder::capture() const {
  MutexLock lock(mutex_);
  return capture_;
}

void DetCheckpointRecorder::BeginEpoch(EpochId epoch, std::string_view scheme) {
  if (!enabled()) return;
  MutexLock lock(mutex_);
  t_det_binding = ThreadBinding{this, generation_, epoch, std::string(scheme),
                                true};
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    if (ring_[i].epoch == epoch && ring_[i].scheme == scheme) {
      open_ = i;
      return;
    }
  }
  EpochCheckpoints record;
  record.epoch = epoch;
  record.scheme = std::string(scheme);
  if (ring_.size() >= capacity_) {
    // Shed the oldest epoch (ring order is append order).
    ring_.erase(ring_.begin());
    if (open_ != SIZE_MAX && open_ > 0) --open_;
  }
  ring_.push_back(std::move(record));
  open_ = ring_.size() - 1;
}

void DetCheckpointRecorder::BindThread(EpochId epoch, std::string_view scheme) {
  if (!enabled()) return;
  MutexLock lock(mutex_);
  t_det_binding = ThreadBinding{this, generation_, epoch, std::string(scheme),
                                true};
}

void DetCheckpointRecorder::UnbindThread() {
  if (t_det_binding.owner == this) t_det_binding = ThreadBinding{};
}

void DetCheckpointRecorder::Record(DetStage stage,
                                   std::string_view canonical) {
  if (!enabled()) return;
  Hash256 digest = Sha256::Digest(canonical);
  MutexLock lock(mutex_);
  std::size_t slot = SIZE_MAX;
  if (t_det_binding.bound && t_det_binding.owner == this &&
      t_det_binding.generation == generation_) {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      if (ring_[i].epoch == t_det_binding.epoch &&
          ring_[i].scheme == t_det_binding.scheme) {
        slot = i;
        break;
      }
    }
    if (slot == SIZE_MAX) return;  // bound epoch shed from the ring
  } else {
    if (open_ == SIZE_MAX || open_ >= ring_.size()) return;
    slot = open_;
  }
  if (perturb_.has_value() && *perturb_ == stage) {
    digest.bytes[0] ^= 0xA5;  // simulate a stage-local nondeterminism bug
  }
  EpochCheckpoints& record = ring_[slot];
  const auto i = static_cast<std::size_t>(stage);
  record.digest[i] = digest;
  record.present[i] = true;
  if (capture_) record.canonical[i] = std::string(canonical);
  if (obs::MetricsEnabled()) {
    obs::Registry()
        .GetCounter("nezha_det_checkpoint_records_total",
                    {{"stage", DetStageName(stage)}})
        ->Inc();
    obs::Registry()
        .GetCounter("nezha_det_checkpoint_bytes_total",
                    {{"stage", DetStageName(stage)}})
        ->Inc(canonical.size());
  }
}

void DetCheckpointRecorder::PerturbStageForTest(std::optional<DetStage> stage) {
  MutexLock lock(mutex_);
  perturb_ = stage;
}

std::vector<EpochCheckpoints> DetCheckpointRecorder::Snapshot() const {
  MutexLock lock(mutex_);
  return ring_;
}

std::optional<EpochCheckpoints> DetCheckpointRecorder::Find(
    EpochId epoch, std::string_view scheme) const {
  MutexLock lock(mutex_);
  for (const EpochCheckpoints& record : ring_) {
    if (record.epoch == epoch && (scheme.empty() || record.scheme == scheme)) {
      return record;
    }
  }
  return std::nullopt;
}

void DetCheckpointRecorder::Clear() {
  MutexLock lock(mutex_);
  ring_.clear();
  open_ = SIZE_MAX;
  ++generation_;  // invalidate every thread's binding
}

std::size_t FirstDifferingLine(std::string_view a, std::string_view b,
                               std::string* line_a, std::string* line_b) {
  std::size_t line = 1;
  std::size_t ia = 0, ib = 0;
  while (ia < a.size() || ib < b.size()) {
    const std::size_t ea = std::min(a.find('\n', ia), a.size());
    const std::size_t eb = std::min(b.find('\n', ib), b.size());
    const std::string_view la =
        ia < a.size() ? a.substr(ia, ea - ia) : std::string_view();
    const std::string_view lb =
        ib < b.size() ? b.substr(ib, eb - ib) : std::string_view();
    if (la != lb || (ia >= a.size()) != (ib >= b.size())) {
      if (line_a != nullptr) {
        *line_a = ia < a.size() ? std::string(la) : "<missing>";
      }
      if (line_b != nullptr) {
        *line_b = ib < b.size() ? std::string(lb) : "<missing>";
      }
      return line;
    }
    ia = ea + 1;
    ib = eb + 1;
    ++line;
  }
  return 0;
}

DivergenceReport DiffCheckpoints(const std::vector<EpochCheckpoints>& a,
                                 const std::vector<EpochCheckpoints>& b) {
  DivergenceReport report;
  // Match epochs by id (std::map: ascending epoch order — the first
  // divergent epoch in pipeline time, not ring order).
  std::map<EpochId, const EpochCheckpoints*> by_epoch_b;
  for (const EpochCheckpoints& record : b) by_epoch_b[record.epoch] = &record;
  std::map<EpochId, const EpochCheckpoints*> by_epoch_a;
  for (const EpochCheckpoints& record : a) by_epoch_a[record.epoch] = &record;

  for (const auto& [epoch, ra] : by_epoch_a) {
    const auto it = by_epoch_b.find(epoch);
    if (it == by_epoch_b.end()) {
      report.diverged = true;
      report.epoch = epoch;
      report.summary = "epoch " + std::to_string(epoch) +
                       " present only on side A";
      return report;
    }
    const EpochCheckpoints& rb = *it->second;
    for (std::size_t s = 0; s < kNumDetStages; ++s) {
      const auto stage = static_cast<DetStage>(s);
      if (!ra->present[s] || !rb.present[s]) continue;
      if (ra->digest[s] == rb.digest[s]) {
        report.matched_stages.push_back(stage);
        continue;
      }
      report.diverged = true;
      report.epoch = epoch;
      report.stage = stage;
      report.summary = "epoch " + std::to_string(epoch) +
                       ": first divergence at stage '" + DetStageName(stage) +
                       "'";
      if (!ra->canonical[s].empty() || !rb.canonical[s].empty()) {
        report.line = FirstDifferingLine(ra->canonical[s], rb.canonical[s],
                                         &report.line_a, &report.line_b);
        if (report.line != 0) {
          report.summary += ", line " + std::to_string(report.line) + ": \"" +
                            report.line_a + "\" vs \"" + report.line_b + "\"";
        }
      } else {
        report.summary += " (digests only; enable capture for a line diff)";
      }
      return report;
    }
  }
  for (const auto& [epoch, rb] : by_epoch_b) {
    if (!by_epoch_a.contains(epoch)) {
      report.diverged = true;
      report.epoch = epoch;
      report.summary = "epoch " + std::to_string(epoch) +
                       " present only on side B";
      return report;
    }
  }
  report.summary = "no divergence";
  return report;
}

}  // namespace nezha::analysis
