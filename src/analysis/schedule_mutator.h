// Seeded corrupt-schedule generator — the adversary the oracle is tested
// against (docs/ANALYSIS.md §Testing the oracle).
//
// Starting from a schedule the oracle accepts, every emitted mutation is a
// *guaranteed* violation: targets are chosen so the corruption provably
// breaks a serializability invariant (a writer merged down to a reader's
// number, a reader/writer swap, colliding writer numbers, a resurrected
// aborted transaction seated on a conflict, a tampered commit group). Each
// mutation carries the violation kinds the oracle may legitimately report,
// so tests can assert not just rejection but a *correct* counterexample.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/schedule_verifier.h"
#include "cc/scheduler.h"
#include "vm/rwset.h"

namespace nezha::analysis {

struct Mutation {
  /// The corrupted schedule (groups rebuilt to match the tampered sequence,
  /// except for group-tamper mutations whose groups lie on purpose).
  Schedule schedule;
  /// Violation kinds the oracle may correctly report for this corruption
  /// (a merged-down writer may surface as read-after-write OR as the
  /// precedence cycle it creates, depending on which check fires first).
  std::vector<ViolationKind> expected;
  std::string description;
};

/// Generates up to `count` seed-reproducible corrupt schedules derived from
/// `schedule`. Returns fewer when the schedule offers no eligible targets
/// (e.g. a fully conflict-free batch admits no read/write corruption, only
/// structural tampering).
std::vector<Mutation> MutateSchedule(const Schedule& schedule,
                                     std::span<const ReadWriteSet> rwsets,
                                     std::uint64_t seed, std::size_t count);

}  // namespace nezha::analysis
