#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <sstream>

namespace nezha::obs {
namespace {

std::atomic<bool> g_metrics_enabled{true};

/// fetch_add for atomic<double> via CAS (portable pre-C++20-library form).
void AtomicAdd(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value < expected && !target.compare_exchange_weak(
                                 expected, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value > expected && !target.compare_exchange_weak(
                                 expected, value, std::memory_order_relaxed)) {
  }
}

std::string FormatNumber(double v) {
  // Integers print without a trailing ".000000"; everything else with
  // enough precision for latency micros.
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end(),
            [](const Label& a, const Label& b) { return a.key < b.key; });
  std::string out = "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ",";
    out += sorted[i].key;
    out += "=\"";
    out += sorted[i].value;
    out += "\"";
  }
  out += "}";
  return out;
}

const std::vector<double>& DefaultLatencyBoundsUs() {
  static const std::vector<double> kBounds = {
      1,      2.5,    5,      10,      25,      50,      100,
      250,    500,    1000,   2500,    5000,    10000,   25000,
      50000,  100000, 250000, 500000,  1000000, 2500000, 10000000};
  return kBounds;
}

const std::vector<double>& DefaultLatencyBoundsMs() {
  static const std::vector<double> kBounds = {
      0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1,    2.5,   5,     10,
      25,   50,    100,  250,  500,  1000, 2500, 5000,  10000, 60000};
  return kBounds;
}

const std::vector<double>& DefaultSizeBounds() {
  static const std::vector<double> kBounds = {
      1,      4,      16,     64,     256,    1024,  4096,
      16384,  65536,  262144, 1048576, 4194304, 16777216, 1073741824};
  return kBounds;
}

double HistogramData::Percentile(double p) const {
  if (count == 0 || counts.empty()) return 0;
  if (p <= 0) return min;
  if (p >= 100) return max;
  const double target = p / 100.0 * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      // Interpolate linearly inside [lo, hi); clamp to observed min/max so
      // single-sample (and single-bucket) histograms report the sample, not
      // a bucket edge.
      const double lo = i == 0 || i > bounds.size() ? min : bounds[i - 1];
      const double hi = i < bounds.size() ? bounds[i] : max;
      const double frac =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      const double v = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
      return std::clamp(v, min, max);
    }
    cumulative += in_bucket;
  }
  return max;
}

BucketHistogram::BucketHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void BucketHistogram::Observe(double value) {
  if (!MetricsEnabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
}

void BucketHistogram::ObserveMany(std::span<const double> values) {
  if (!MetricsEnabled() || values.empty()) return;
  std::vector<std::uint64_t> local(buckets_.size(), 0);
  double sum = 0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const double value : values) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    ++local[static_cast<std::size_t>(it - bounds_.begin())];
    sum += value;
    lo = std::min(lo, value);
    hi = std::max(hi, value);
  }
  for (std::size_t i = 0; i < local.size(); ++i) {
    if (local[i] != 0) {
      buckets_[i].fetch_add(local[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(values.size(), std::memory_order_relaxed);
  AtomicAdd(sum_, sum);
  AtomicMin(min_, lo);
  AtomicMax(max_, hi);
}

HistogramData BucketHistogram::Snapshot() const {
  HistogramData data;
  data.bounds = bounds_;
  data.counts.resize(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    data.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  data.count = count_.load(std::memory_order_relaxed);
  data.sum = sum_.load(std::memory_order_relaxed);
  const double min = min_.load(std::memory_order_relaxed);
  const double max = max_.load(std::memory_order_relaxed);
  data.min = data.count == 0 ? 0 : min;
  data.max = data.count == 0 ? 0 : max;
  // A concurrent Observe may have bumped count_ after the bucket loop; keep
  // the snapshot internally consistent by trusting the bucket sums.
  std::uint64_t bucket_total = 0;
  for (std::uint64_t c : data.counts) bucket_total += c;
  data.count = std::min(data.count, bucket_total);
  return data;
}

void BucketHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

const MetricSample* RegistrySnapshot::Find(std::string_view name,
                                           std::string_view labels) const {
  for (const MetricSample& s : samples) {
    if (s.name == name && (labels.empty() || s.labels == labels)) return &s;
  }
  return nullptr;
}

double RegistrySnapshot::Value(std::string_view name,
                               std::string_view labels) const {
  const MetricSample* s = Find(name, labels);
  return s == nullptr ? 0 : s->value;
}

double RegistrySnapshot::SumAcrossLabels(std::string_view name) const {
  double total = 0;
  for (const MetricSample& s : samples) {
    if (s.name == name) total += s.value;
  }
  return total;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(
    std::string_view name, const Labels& labels, MetricKind kind,
    const std::vector<double>* bounds) {
  const std::string rendered = RenderLabels(labels);
  std::string key(name);
  key += rendered;
  Stripe& stripe = stripes_[std::hash<std::string>{}(key) % kStripes];
  MutexLock lock(stripe.mutex);
  for (const auto& entry : stripe.entries) {
    if (entry->name == name && entry->labels == rendered) return entry.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = kind;
  entry->name = std::string(name);
  entry->labels = rendered;
  switch (kind) {
    case MetricKind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      entry->histogram = std::make_unique<BucketHistogram>(
          bounds != nullptr ? *bounds : DefaultLatencyBoundsUs());
      break;
  }
  stripe.entries.push_back(std::move(entry));
  return stripe.entries.back().get();
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     const Labels& labels) {
  return FindOrCreate(name, labels, MetricKind::kCounter, nullptr)
      ->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, const Labels& labels) {
  return FindOrCreate(name, labels, MetricKind::kGauge, nullptr)->gauge.get();
}

BucketHistogram* MetricsRegistry::GetHistogram(
    std::string_view name, const Labels& labels,
    const std::vector<double>& bounds) {
  return FindOrCreate(name, labels, MetricKind::kHistogram, &bounds)
      ->histogram.get();
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  RegistrySnapshot snapshot;
  for (const Stripe& stripe : stripes_) {
    MutexLock lock(stripe.mutex);
    for (const auto& entry : stripe.entries) {
      MetricSample sample;
      sample.name = entry->name;
      sample.labels = entry->labels;
      sample.kind = entry->kind;
      switch (entry->kind) {
        case MetricKind::kCounter:
          sample.value = static_cast<double>(entry->counter->Value());
          break;
        case MetricKind::kGauge:
          sample.value = static_cast<double>(entry->gauge->Value());
          break;
        case MetricKind::kHistogram:
          sample.histogram = entry->histogram->Snapshot();
          sample.value = sample.histogram.sum;
          break;
      }
      snapshot.samples.push_back(std::move(sample));
    }
  }
  std::sort(snapshot.samples.begin(), snapshot.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.FullName() < b.FullName();
            });
  return snapshot;
}

std::string MetricsRegistry::RenderText() const {
  const RegistrySnapshot snapshot = Snapshot();
  std::ostringstream out;
  std::string last_name;
  for (const MetricSample& s : snapshot.samples) {
    if (s.name != last_name) {
      const char* type = s.kind == MetricKind::kCounter   ? "counter"
                         : s.kind == MetricKind::kGauge   ? "gauge"
                                                          : "histogram";
      out << "# TYPE " << s.name << " " << type << "\n";
      last_name = s.name;
    }
    if (s.kind != MetricKind::kHistogram) {
      out << s.name << s.labels << " " << FormatNumber(s.value) << "\n";
      continue;
    }
    // Prometheus histogram exposition: cumulative _bucket series plus
    // _sum/_count, with the label set merged into each series.
    const std::string base_labels =
        s.labels.empty() ? "" : s.labels.substr(1, s.labels.size() - 2);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < s.histogram.counts.size(); ++i) {
      cumulative += s.histogram.counts[i];
      const std::string le =
          i < s.histogram.bounds.size()
              ? FormatNumber(s.histogram.bounds[i])
              : "+Inf";
      out << s.name << "_bucket{";
      if (!base_labels.empty()) out << base_labels << ",";
      out << "le=\"" << le << "\"} " << cumulative << "\n";
    }
    out << s.name << "_sum" << s.labels << " " << FormatNumber(s.histogram.sum)
        << "\n";
    out << s.name << "_count" << s.labels << " " << s.histogram.count << "\n";
    // Derived quantiles (summary-style series) so dashboards get p50/p95/p99
    // without PromQL bucket arithmetic; interpolated inside the bucket, so
    // approximate to the bucket resolution.
    static constexpr struct {
      double p;
      const char* label;
    } kQuantiles[] = {{50.0, "0.5"}, {95.0, "0.95"}, {99.0, "0.99"}};
    for (const auto& q : kQuantiles) {
      out << s.name << "{";
      if (!base_labels.empty()) out << base_labels << ",";
      out << "quantile=\"" << q.label << "\"} "
          << FormatNumber(s.histogram.Percentile(q.p)) << "\n";
    }
  }
  return out.str();
}

void MetricsRegistry::ResetAll() {
  for (Stripe& stripe : stripes_) {
    MutexLock lock(stripe.mutex);
    for (const auto& entry : stripe.entries) {
      switch (entry->kind) {
        case MetricKind::kCounter:
          entry->counter->Reset();
          break;
        case MetricKind::kGauge:
          entry->gauge->Reset();
          break;
        case MetricKind::kHistogram:
          entry->histogram->Reset();
          break;
      }
    }
  }
}

std::size_t MetricsRegistry::MetricCount() const {
  std::size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    MutexLock lock(stripe.mutex);
    total += stripe.entries.size();
  }
  return total;
}

}  // namespace nezha::obs
