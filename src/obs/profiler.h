// Pipeline bottleneck profiler — attributes CPU to work
// (docs/OBSERVABILITY.md, "Pipeline profiler").
//
// The phase tracer (trace.h) answers "how long did each phase take"; this
// profiler answers "where did the cores actually go while it ran": which
// pipeline stage burned the CPU, how long tasks sat in the pool queue, how
// much of the epoch each worker spent idle, and which stage the pipeline
// was stuck in while they starved.
//
// Three cooperating pieces:
//
//   * STAGE TAGS — every ThreadPool task carries the stage label that was
//     active on the submitting thread (StageScope / ProfileSpan set a
//     thread_local; Submit captures it; workers restore it while running the
//     task so nested submissions inherit). Labels are interned to small ids
//     so the hot path never touches a string.
//
//   * TASK SAMPLES — the pool stamps every task with steady-clock
//     enqueue/start/finish times plus a CLOCK_THREAD_CPUTIME_ID delta, and
//     hands the sample here (PipelineProfiler::RecordTask). Inline-executed
//     work (the nested-submission fallback) is recorded too, attributed to
//     the calling worker's timeline, so profiles don't under-report nested
//     work. Sampling is window-gated: outside BeginEpoch/FinishEpoch the
//     whole stamp path is one relaxed load.
//
//   * STAGE SPANS — ProfileSpan RAII records the wall interval, driver
//     thread-CPU and global allocation-count delta of one pipeline stage on
//     the driving thread (validate / execute / acg_build / rank_division /
//     tx_sorting / exec_groups / durable_commit / ...). FinishEpoch joins
//     spans and samples into one EpochProfile.
//
// FinishEpoch computes, per stage: CPU-ms vs wall-ms, busy-ms, task count,
// queue-wait p50/p95/max and allocation deltas; and, per epoch: parallel
// efficiency busy / (workers x span), the largest per-worker idle gap with
// the stage that was running while the worker starved, and peak RSS. The
// result feeds EpochReport.profile, the flight record's "profile" member,
// the nezha_pool_* / nezha_profile_* Prometheus series, and (when the
// tracer is enabled) Chrome-trace counter tracks ("pool_busy_workers",
// "pool_queued_tasks").
//
// AnalyzeCriticalPath walks one epoch's recorded stage spans (leaf spans in
// start order — ACG build -> sort -> execute groups -> commit), emits the
// longest chain, and computes per-stage Amdahl "speedup-if-parallelized"
// estimates: what the epoch latency would become if this stage alone ran at
// perfect efficiency on all workers.
//
// The profiler is ON by default and kill-switched like the metrics
// registry; a disabled (or out-of-window) stamp is one relaxed load.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"

namespace nezha::obs {

/// Interned pipeline-stage label. 0 = untagged work.
using StageId = std::uint16_t;
inline constexpr StageId kStageNone = 0;
inline constexpr std::size_t kMaxStages = 64;

/// Finds or creates the id for a stage label (bounded table: once kMaxStages
/// distinct labels exist, unknown labels collapse to kStageNone).
StageId InternStage(std::string_view name);
/// Display name of an interned stage ("untagged" for kStageNone).
std::string_view StageName(StageId id);

/// The stage currently active on this thread (what Submit captures).
StageId CurrentStage();

/// Identifies one open profiler epoch window. 0 = unbound: stamps carrying
/// it are attributed to the earliest-open window when that window closes
/// (the pre-pipelining single-window behaviour). Ids are monotone and never
/// reused.
using ProfileWindowId = std::uint32_t;
inline constexpr ProfileWindowId kProfileWindowNone = 0;

/// The profile window bound to this thread (what Submit captures alongside
/// the stage).
ProfileWindowId CurrentProfileWindow();

/// Binds the current thread's stamps (spans, submitted tasks) to one open
/// window, restoring the previous binding on destruction. The cross-epoch
/// pipeline wraps each thread's work for epoch N in one of these so epoch
/// N's samples never leak into the concurrently-open window for N+1.
class ProfileWindowScope {
 public:
  explicit ProfileWindowScope(ProfileWindowId id);
  ~ProfileWindowScope();

  ProfileWindowScope(const ProfileWindowScope&) = delete;
  ProfileWindowScope& operator=(const ProfileWindowScope&) = delete;

 private:
  ProfileWindowId previous_;
};

/// Tags work on the current thread with a stage label, restoring the
/// previous label on destruction. Cheap (two thread_local stores); use it
/// around any region that submits pool tasks worth attributing.
class StageScope {
 public:
  explicit StageScope(std::string_view name);
  explicit StageScope(StageId id);
  ~StageScope();

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  StageId previous_;
};

/// One pool task as the profiler remembers it. Times are microseconds on
/// the tracer clock (PhaseTracer::NowUs); cpu_us is the executing thread's
/// CLOCK_THREAD_CPUTIME_ID delta across the run.
struct TaskSample {
  StageId stage = kStageNone;
  ProfileWindowId window = kProfileWindowNone;  ///< submitter's epoch window
  std::uint32_t tid = 0;  ///< obs::CurrentThreadId of the executing thread
  double enqueue_us = 0;  ///< == start_us for inline-executed work
  double start_us = 0;
  double finish_us = 0;
  double cpu_us = 0;
  bool inlined = false;  ///< nested-submission fallback / serial fast path
};

/// One pipeline stage's interval on the driving thread (ProfileSpan).
struct StageSpan {
  StageId stage = kStageNone;
  ProfileWindowId window = kProfileWindowNone;  ///< recording thread's window
  std::uint32_t tid = 0;
  double start_us = 0;
  double end_us = 0;
  double cpu_us = 0;        ///< driving thread's CPU inside the span
  std::uint64_t allocs = 0; ///< process-wide allocation-count delta
  std::uint32_t depth = 0;  ///< nesting depth on the driving thread
};

/// Per-stage aggregation within one epoch.
struct StageProfile {
  std::string stage;
  std::uint64_t tasks = 0;        ///< pool tasks tagged with this stage
  std::uint64_t inline_tasks = 0; ///< subset executed inline
  double wall_ms = 0;  ///< span wall (or task-interval union when no span)
  double busy_ms = 0;  ///< sum of task run wall across workers
  double cpu_ms = 0;   ///< sum of task thread-CPU + span driver CPU
  double wait_p50_us = 0;  ///< queue wait (enqueue -> start), exact p50
  double wait_p95_us = 0;
  double wait_max_us = 0;
  std::uint64_t allocs = 0;  ///< allocation-count delta over the stage span
  /// busy / (workers x wall): how much of the pool this stage kept fed
  /// while it ran. 0 when the stage has no wall time.
  double efficiency_pct = 0;
};

/// One epoch through the pool, joined from samples and spans.
struct EpochProfile {
  std::uint64_t epoch = 0;
  std::string scheme;
  std::uint32_t workers = 0;
  double span_ms = 0;  ///< BeginEpoch -> FinishEpoch wall
  double busy_ms = 0;  ///< sum of task run wall across all stages
  double cpu_ms = 0;   ///< sum of task + span-driver thread-CPU
  std::uint64_t tasks = 0;
  std::uint64_t inline_tasks = 0;
  std::uint64_t dropped_samples = 0;  ///< ring-capacity drops this epoch
  /// busy / (workers x span), in percent. The parallel-efficiency
  /// denominator for every speedup claim (docs/OBSERVABILITY.md).
  double efficiency_pct = 0;
  /// Largest idle interval of any single worker inside the epoch span, and
  /// the stage whose span overlapped that interval the longest (what the
  /// pipeline was doing while the worker starved). When fewer distinct
  /// workers than `workers` recorded samples, the gap is the whole span.
  double largest_idle_gap_ms = 0;
  std::string idle_gap_stage;
  double peak_rss_kb = 0;  ///< ru_maxrss at FinishEpoch (process peak)
  std::vector<StageProfile> stages;  ///< in first-appearance (stage-id) order
  std::vector<StageSpan> spans;      ///< raw spans, start order (critical path)

  /// The stage with the largest wall_ms ("" when no stages recorded).
  std::string DominantStage() const;
  /// One JSON object (no trailing newline) — the flight-record "profile"
  /// member schema (docs/OBSERVABILITY.md).
  std::string ToJson() const;
};

/// The longest serial chain through one epoch's stage spans, with Amdahl
/// estimates per link.
struct CriticalPathReport {
  struct Node {
    std::string stage;
    double wall_ms = 0;
    double cpu_ms = 0;
    double efficiency_pct = 0;  ///< busy / (workers x wall) for this stage
    /// Amdahl estimate: epoch speedup if THIS stage alone ran at perfect
    /// efficiency on all workers — total / (total - wall + wall/workers).
    double amdahl_speedup = 1.0;
  };
  std::vector<Node> chain;  ///< leaf spans in start order
  double total_wall_ms = 0; ///< sum of chain wall (the critical path length)
  double covered_pct = 0;   ///< chain wall / epoch span
  /// Top-3 chain stages by wall_ms, descending — the bottleneck verdict.
  std::vector<Node> bottlenecks;
};

/// Walks profile.spans (leaf spans only — a span containing another span is
/// a phase envelope, not a chain link) and builds the critical path.
CriticalPathReport AnalyzeCriticalPath(const EpochProfile& profile);

/// Process-wide allocation counter (operator new interposition; relaxed).
/// Monotonic; span deltas subtract two reads. Always 0 under ASan/TSan —
/// the sanitizer runtime owns operator new there.
std::uint64_t AllocationCount();

/// Calling thread's cumulative CPU time in microseconds
/// (CLOCK_THREAD_CPUTIME_ID). Deltas across a region give on-CPU time
/// excluding blocking waits.
double ThreadCpuUs();

class PipelineProfiler {
 public:
  static PipelineProfiler& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled);

  /// True when stamps should be taken: enabled AND an epoch window is open.
  /// The pool checks this ONCE per task before reading any clock.
  bool Sampling() const {
    return sampling_.load(std::memory_order_relaxed);
  }

  /// Opens an epoch window: clears the sample/span buffers and arms
  /// Sampling(). Any unfinished previous windows are discarded (the
  /// single-pipeline batch path). `workers` is the pool size used as the
  /// efficiency denominator. Binds the calling thread to the new window.
  void BeginEpoch(std::uint64_t epoch, std::string_view scheme,
                  std::size_t workers);
  bool EpochActive() const;

  /// Multi-window form for the cross-epoch pipeline: opens a window WITHOUT
  /// discarding already-open ones (up to kMaxWindows; beyond that the
  /// oldest is discarded) and binds the calling thread to it. Samples and
  /// spans are attributed to the window their recording thread was bound to
  /// at submit time; unbound (window-0) stamps go to the earliest-open
  /// window when it closes.
  ProfileWindowId BeginEpochWindow(std::uint64_t epoch,
                                   std::string_view scheme,
                                   std::size_t workers);
  /// Closes ONE window and aggregates exactly the stamps attributed to it,
  /// leaving other open windows' stamps buffered. Returns a default profile
  /// when `id` is not open.
  EpochProfile FinishEpochWindow(ProfileWindowId id);

  /// Records one executed pool task (called by ThreadPool). Drops samples
  /// beyond the ring capacity (counted; reported in the epoch profile).
  void RecordTask(const TaskSample& sample);
  /// Records one stage span (called by ~ProfileSpan).
  void RecordSpan(const StageSpan& span);

  /// Closes the earliest-open window and aggregates: per-stage
  /// CPU/wall/busy/waits, parallel efficiency, idle gaps, peak RSS.
  /// Publishes the nezha_pool_* / nezha_profile_* series and (when the
  /// phase tracer is enabled) the Chrome-trace counter tracks. Returns a
  /// default profile when no window is active. Runs off the hot path —
  /// cost is O(samples log samples).
  EpochProfile FinishEpoch();

  /// The last finished epoch's profile (tests, reports).
  EpochProfile LastProfile() const;

  /// Drops all buffered state (tests).
  void Clear();

 private:
  PipelineProfiler() = default;

  /// Emits the nezha_pool_* / nezha_profile_* series and the Chrome-trace
  /// counter tracks for one finished epoch.
  void PublishProfile(const EpochProfile& profile,
                      const std::vector<TaskSample>& samples);

  void UpdateSampling() {
    sampling_.store(enabled_.load(std::memory_order_relaxed) &&
                        active_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  }

  static constexpr std::size_t kStripes = 16;
  /// Sample budget across all open windows; beyond it samples drop
  /// (counted). 1<<17 samples x 56 B ~= 7 MiB worst case, bounded.
  static constexpr std::size_t kMaxSamples = 1u << 17;
  /// Open-window cap: a pipeline of depth d keeps at most d+1 epochs in
  /// flight; 4 covers the depths the pipeline supports.
  static constexpr std::size_t kMaxWindows = 4;

  struct Stripe {
    mutable Mutex mutex;
    std::vector<TaskSample> samples GUARDED_BY(mutex);
  };

  /// One open epoch window's identity and bounds.
  struct Window {
    ProfileWindowId id = kProfileWindowNone;
    std::uint64_t epoch = 0;
    std::string scheme;
    std::uint32_t workers = 0;
    double begin_us = 0;
  };

  std::atomic<bool> enabled_{true};
  std::atomic<bool> active_{false};
  std::atomic<bool> sampling_{false};
  std::atomic<std::uint64_t> sample_count_{0};
  std::atomic<std::uint64_t> dropped_{0};

  mutable Mutex epoch_mutex_;
  std::vector<Window> windows_ GUARDED_BY(epoch_mutex_);  ///< open order
  ProfileWindowId next_window_id_ GUARDED_BY(epoch_mutex_) = 1;
  std::vector<StageSpan> spans_ GUARDED_BY(epoch_mutex_);
  EpochProfile last_profile_ GUARDED_BY(epoch_mutex_);

  Stripe stripes_[kStripes];
};

/// Shorthand for PipelineProfiler::Global().
inline PipelineProfiler& Profiler() { return PipelineProfiler::Global(); }

/// RAII stage span: tags the thread (StageScope semantics) AND records a
/// StageSpan with wall, driver thread-CPU and allocation deltas when the
/// profiler is sampling. Construction outside an epoch window degrades to a
/// plain StageScope.
class ProfileSpan {
 public:
  explicit ProfileSpan(std::string_view name);
  ~ProfileSpan();

  ProfileSpan(const ProfileSpan&) = delete;
  ProfileSpan& operator=(const ProfileSpan&) = delete;

 private:
  StageId stage_;
  StageId previous_stage_;
  ProfileWindowId window_ = kProfileWindowNone;
  bool armed_ = false;
  double start_us_ = 0;
  double cpu_start_us_ = 0;
  std::uint64_t allocs_start_ = 0;
  std::uint32_t depth_ = 0;
};

}  // namespace nezha::obs
