// Epoch flight recorder — a bounded, lock-striped ring of structured
// per-epoch records, the post-mortem counterpart to the live metrics
// registry (docs/OBSERVABILITY.md).
//
// Every processed epoch leaves one EpochFlightRecord: identity and sizes,
// the four phase durations, ACG statistics, the Algorithm 1 rank-division
// decision counters, §IV.D reorder activity, the hottest addresses by
// read/write population, and one AbortRecord per aborted transaction with
// the exact conflict kind and sequence number at the decision point.
//
// The ring is striped (records hash to a stripe by their arrival sequence)
// so concurrent nodes — tests and benches run several at once — never
// contend on one mutex; each stripe holds capacity/kStripes records and
// overwrites its own oldest.
//
// Export is JSON Lines: one record per line, shaped for `jq`. On a
// post-mortem trigger (serializability-oracle rejection, an injected crash
// at a fault site, FullNode::Recover) the whole ring is dumped to
// <dump-dir>/nezha_flight_<reason>_<n>.jsonl with a trailer line naming the
// offending epoch. Dumps are written only when a dump directory is
// configured (SetDumpDirectory or the NEZHA_FLIGHT_DUMP_DIR environment
// variable), so crash-sweep tests do not spray files; the
// nezha_flight_dumps_total{reason} counter always ticks.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/abort_attribution.h"
#include "obs/profiler.h"
#include "obs/tx_lifecycle.h"

namespace nezha::obs {

/// One epoch through the pipeline, as the recorder remembers it.
struct EpochFlightRecord {
  std::uint64_t epoch = 0;
  std::string scheme;
  std::uint32_t blocks = 0;
  std::uint32_t txs = 0;
  std::uint32_t committed = 0;
  std::uint32_t aborted = 0;

  double validate_ms = 0;
  double execute_ms = 0;
  double cc_ms = 0;
  double commit_ms = 0;

  std::uint64_t acg_vertices = 0;  ///< addresses touched
  std::uint64_t acg_edges = 0;     ///< address-dependency edges

  // Parallel-pipeline activity (docs/PARALLELISM.md): how the sharded ACG
  // build, cluster-parallel sorter, and group-parallel executor split this
  // epoch's work. All zero when the epoch ran a fully serial scheme.
  std::uint32_t parallel_acg_shards = 0;     ///< 1 = serial fallback
  std::uint32_t parallel_sort_clusters = 0;  ///< 1 = serial fallback
  std::uint32_t parallel_exec_groups = 0;
  std::uint32_t parallel_max_group = 0;  ///< peak in-group concurrency

  ScheduleAttribution attribution;

  /// Per-transaction latency decomposition (tx_lifecycle.h). Serialised as
  /// the "latency" member when latency.tracked > 0.
  EpochLatencySummary latency;

  /// Pipeline profile (obs/profiler.h): stage CPU vs wall, parallel
  /// efficiency, idle gaps, critical path. Serialised as the "profile"
  /// member when profile.span_ms > 0 (i.e. the profiler saw the epoch).
  EpochProfile profile;

  /// Serialises this record as one JSON object (no trailing newline).
  std::string ToJson() const;
};

/// One discrete incident worth remembering next to the epoch records — a
/// rejected block, an equivocation, a partition heal. Bounded ring, oldest
/// dropped; serialised into post-mortem dumps as `{"event":{...}}` lines.
struct FlightEvent {
  std::uint64_t seq = 0;  ///< arrival order (monotonic per process)
  std::string component;  ///< who observed it ("ledger", "dagrider", ...)
  std::string kind;       ///< what happened ("reject/bad-tx-root", ...)
  std::string detail;     ///< free-form context

  std::string ToJson() const;
};

class FlightRecorder {
 public:
  static FlightRecorder& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Total ring capacity in records (default 512, split across stripes).
  /// Shrinking drops the oldest records.
  void SetCapacity(std::size_t capacity);

  void Record(EpochFlightRecord record);

  /// The epoch currently being processed — post-mortem dumps name it even
  /// when the epoch died before its record landed. 0 = none.
  void SetCurrentEpoch(std::uint64_t epoch) {
    current_epoch_.store(epoch, std::memory_order_relaxed);
  }
  std::uint64_t CurrentEpoch() const {
    return current_epoch_.load(std::memory_order_relaxed);
  }

  /// Copies out the buffered records in arrival order (oldest first).
  std::vector<EpochFlightRecord> Records() const;
  std::size_t RecordCount() const;
  /// Lifetime count, including records the ring has overwritten.
  std::uint64_t TotalRecorded() const;
  void Clear();

  /// All buffered records as JSON Lines, plus nothing else.
  std::string ExportJsonl() const;
  /// Writes ExportJsonl() to `path`; false on I/O failure.
  bool WriteJsonl(const std::string& path) const;

  /// Appends one incident to the bounded event ring (capacity
  /// kEventCapacity; oldest dropped). No-op while disabled.
  void RecordEvent(std::string component, std::string kind,
                   std::string detail);
  /// Copies out the buffered events, oldest first.
  std::vector<FlightEvent> Events() const;
  /// Lifetime count, including events the ring has dropped.
  std::uint64_t TotalEvents() const;

  /// Where post-mortem dumps land. Resolution: this override if set, else
  /// $NEZHA_FLIGHT_DUMP_DIR, else dumps are disabled (metric still ticks).
  void SetDumpDirectory(std::optional<std::string> dir);

  /// Dumps the ring to <dir>/nezha_flight_<reason>_<n>.jsonl with a trailer
  /// line `{"postmortem":reason,"epoch":CurrentEpoch(),...}`. Returns the
  /// path written, or an empty string when no dump directory is configured
  /// or the write failed. Always increments
  /// nezha_flight_dumps_total{reason}.
  std::string DumpPostMortem(std::string_view reason);

 private:
  FlightRecorder() = default;

  static constexpr std::size_t kStripes = 8;
  static constexpr std::size_t kEventCapacity = 256;

  struct Stripe {
    mutable Mutex mutex;
    /// Ring of per-stripe slots; slot = (seq / kStripes) % capacity.
    std::vector<EpochFlightRecord> ring GUARDED_BY(mutex);
    std::vector<std::uint64_t> seqs GUARDED_BY(mutex);  ///< seq per slot
    std::vector<bool> used GUARDED_BY(mutex);
    std::size_t capacity GUARDED_BY(mutex) = 64;  ///< 512 / kStripes
  };

  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> current_epoch_{0};
  std::atomic<std::uint64_t> dump_counter_{0};

  mutable Mutex dump_mutex_;
  std::optional<std::string> dump_dir_ GUARDED_BY(dump_mutex_);

  mutable Mutex event_mutex_;
  /// Ring, oldest first once full; slot = event.seq % kEventCapacity.
  std::vector<FlightEvent> events_ GUARDED_BY(event_mutex_);
  std::uint64_t next_event_seq_ GUARDED_BY(event_mutex_) = 0;

  Stripe stripes_[kStripes];
};

}  // namespace nezha::obs
