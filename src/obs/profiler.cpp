#include "obs/profiler.h"

#include <sys/resource.h>
#include <time.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace nezha::obs {
namespace {

// ---------------------------------------------------------------------------
// Allocation counting.
//
// The global operator new/delete overrides below route every allocation in
// the process through one relaxed counter so ProfileSpan can report
// allocation-count deltas per pipeline stage. Under ASan/TSan the sanitizer
// runtime owns operator new (replacing it would bypass its bookkeeping), so
// the override is compiled out and AllocationCount() stays at zero — tests
// that assert on allocation deltas skip themselves there.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define NEZHA_PROFILER_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define NEZHA_PROFILER_COUNT_ALLOCS 0
#else
#define NEZHA_PROFILER_COUNT_ALLOCS 1
#endif
#else
#define NEZHA_PROFILER_COUNT_ALLOCS 1
#endif

// Constant-initialized: operator new runs before any static constructor.
std::atomic<std::uint64_t> g_alloc_count{0};

#if NEZHA_PROFILER_COUNT_ALLOCS
void* CountedAlloc(std::size_t size) {
  if (size == 0) size = 1;
  for (;;) {
    void* p = std::malloc(size);
    if (p != nullptr) {
      g_alloc_count.fetch_add(1, std::memory_order_relaxed);
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* CountedAlignedAlloc(std::size_t size, std::size_t alignment) {
  if (size == 0) size = 1;
  for (;;) {
    void* p = nullptr;
    if (posix_memalign(&p, std::max(alignment, sizeof(void*)), size) == 0) {
      g_alloc_count.fetch_add(1, std::memory_order_relaxed);
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}
#endif  // NEZHA_PROFILER_COUNT_ALLOCS

// ---------------------------------------------------------------------------
// Stage interning. The table is append-only and bounded; call sites intern
// once (function-local static) so the hot path only passes ids around.

struct StageTable {
  Mutex mutex;
  // Index = StageId. Slot 0 is the untagged sentinel.
  std::vector<std::string> names GUARDED_BY(mutex);
};

StageTable& Stages() {
  static StageTable* table = [] {
    auto* t = new StageTable();  // never freed
    MutexLock lock(t->mutex);
    t->names.emplace_back("untagged");
    return t;
  }();
  return *table;
}

thread_local StageId t_current_stage = kStageNone;
thread_local std::uint32_t t_profile_depth = 0;
thread_local ProfileWindowId t_profile_window = kProfileWindowNone;

std::string FormatNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

double PeakRssKb() {
  struct rusage usage;
  std::memset(&usage, 0, sizeof(usage));
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<double>(usage.ru_maxrss);  // KiB on Linux
}

/// Exact percentile over a sorted vector (nearest-rank interpolation).
double SortedPercentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  if (sorted.size() == 1) return sorted.front();
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

const std::vector<double>& EfficiencyBounds() {
  static const std::vector<double>* bounds = new std::vector<double>{
      5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 100};
  return *bounds;
}

/// Coalesced Chrome counter track: emits at most kMaxCounterPoints samples
/// per track per epoch so a 100k-task epoch doesn't flood the trace ring.
constexpr std::size_t kMaxCounterPoints = 512;

void EmitCounterTrack(PhaseTracer& tracer, std::string_view track,
                      const std::vector<std::pair<double, int>>& deltas) {
  if (deltas.empty()) return;
  const std::size_t stride = std::max<std::size_t>(
      1, (deltas.size() + kMaxCounterPoints - 1) / kMaxCounterPoints);
  long level = 0;
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    level += deltas[i].second;
    if (i % stride == 0 || i + 1 == deltas.size()) {
      tracer.RecordCounter(track, deltas[i].first,
                           static_cast<double>(level));
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Global operator new/delete. Out-of-line, non-inlined definitions replace
// the libstdc++ defaults program-wide; every other behaviour (nothrow,
// aligned, sized delete) matches the standard ones.

#if NEZHA_PROFILER_COUNT_ALLOCS
#define NEZHA_PROFILER_ALLOCS_ACTIVE_ 1
#else
#define NEZHA_PROFILER_ALLOCS_ACTIVE_ 0
#endif

std::uint64_t AllocationCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

}  // namespace nezha::obs

#if NEZHA_PROFILER_ALLOCS_ACTIVE_

void* operator new(std::size_t size) {
  return nezha::obs::CountedAlloc(size);
}
void* operator new[](std::size_t size) {
  return nezha::obs::CountedAlloc(size);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return nezha::obs::CountedAlloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return nezha::obs::CountedAlloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t size, std::align_val_t align) {
  return nezha::obs::CountedAlignedAlloc(size,
                                         static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return nezha::obs::CountedAlignedAlloc(size,
                                         static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  try {
    return nezha::obs::CountedAlignedAlloc(size,
                                           static_cast<std::size_t>(align));
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  try {
    return nezha::obs::CountedAlignedAlloc(size,
                                           static_cast<std::size_t>(align));
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // NEZHA_PROFILER_ALLOCS_ACTIVE_

namespace nezha::obs {

// ---------------------------------------------------------------------------
// Stage interning.

StageId InternStage(std::string_view name) {
  StageTable& table = Stages();
  MutexLock lock(table.mutex);
  for (std::size_t i = 0; i < table.names.size(); ++i) {
    if (table.names[i] == name) return static_cast<StageId>(i);
  }
  if (table.names.size() >= kMaxStages) return kStageNone;
  table.names.emplace_back(name);
  return static_cast<StageId>(table.names.size() - 1);
}

std::string_view StageName(StageId id) {
  StageTable& table = Stages();
  MutexLock lock(table.mutex);
  if (id >= table.names.size()) return "untagged";
  // Safe to hand out: the table is append-only and strings are never
  // reassigned, so the string's buffer outlives every caller.
  return table.names[id];
}

StageId CurrentStage() { return t_current_stage; }

StageScope::StageScope(std::string_view name)
    : StageScope(InternStage(name)) {}

StageScope::StageScope(StageId id) : previous_(t_current_stage) {
  t_current_stage = id;
}

StageScope::~StageScope() { t_current_stage = previous_; }

ProfileWindowId CurrentProfileWindow() { return t_profile_window; }

ProfileWindowScope::ProfileWindowScope(ProfileWindowId id)
    : previous_(t_profile_window) {
  t_profile_window = id;
}

ProfileWindowScope::~ProfileWindowScope() { t_profile_window = previous_; }

// ---------------------------------------------------------------------------
// ProfileSpan.

double ThreadCpuUs() {
  struct timespec ts;
  // src/obs is detlint-exempt: profiling clocks never feed consensus state.
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<double>(ts.tv_sec) * 1e6 +
         static_cast<double>(ts.tv_nsec) * 1e-3;
}

ProfileSpan::ProfileSpan(std::string_view name)
    : stage_(InternStage(name)), previous_stage_(t_current_stage) {
  t_current_stage = stage_;
  if (!Profiler().Sampling()) return;
  armed_ = true;
  window_ = t_profile_window;
  depth_ = t_profile_depth++;
  allocs_start_ = AllocationCount();
  cpu_start_us_ = ThreadCpuUs();
  start_us_ = PhaseTracer::NowUs();
}

ProfileSpan::~ProfileSpan() {
  t_current_stage = previous_stage_;
  if (!armed_) return;
  --t_profile_depth;
  StageSpan span;
  span.stage = stage_;
  span.window = window_;
  span.tid = CurrentThreadId();
  span.start_us = start_us_;
  span.end_us = PhaseTracer::NowUs();
  span.cpu_us = ThreadCpuUs() - cpu_start_us_;
  span.allocs = AllocationCount() - allocs_start_;
  span.depth = depth_;
  Profiler().RecordSpan(span);
}

// ---------------------------------------------------------------------------
// EpochProfile.

std::string EpochProfile::DominantStage() const {
  const StageProfile* best = nullptr;
  for (const StageProfile& s : stages) {
    if (best == nullptr || s.wall_ms > best->wall_ms) best = &s;
  }
  return best == nullptr ? "" : best->stage;
}

std::string EpochProfile::ToJson() const {
  std::ostringstream out;
  out << "{\"epoch\":" << epoch << ",\"scheme\":\"" << JsonEscape(scheme)
      << "\",\"workers\":" << workers
      << ",\"span_ms\":" << FormatNum(span_ms)
      << ",\"busy_ms\":" << FormatNum(busy_ms)
      << ",\"cpu_ms\":" << FormatNum(cpu_ms) << ",\"tasks\":" << tasks
      << ",\"inline_tasks\":" << inline_tasks
      << ",\"dropped_samples\":" << dropped_samples
      << ",\"efficiency_pct\":" << FormatNum(efficiency_pct)
      << ",\"largest_idle_gap_ms\":" << FormatNum(largest_idle_gap_ms)
      << ",\"idle_gap_stage\":\"" << JsonEscape(idle_gap_stage) << "\""
      << ",\"peak_rss_kb\":" << FormatNum(peak_rss_kb) << ",\"stages\":[";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageProfile& s = stages[i];
    if (i > 0) out << ",";
    out << "{\"stage\":\"" << JsonEscape(s.stage) << "\",\"tasks\":" << s.tasks
        << ",\"inline_tasks\":" << s.inline_tasks
        << ",\"wall_ms\":" << FormatNum(s.wall_ms)
        << ",\"busy_ms\":" << FormatNum(s.busy_ms)
        << ",\"cpu_ms\":" << FormatNum(s.cpu_ms)
        << ",\"wait_p50_us\":" << FormatNum(s.wait_p50_us)
        << ",\"wait_p95_us\":" << FormatNum(s.wait_p95_us)
        << ",\"wait_max_us\":" << FormatNum(s.wait_max_us)
        << ",\"allocs\":" << s.allocs
        << ",\"efficiency_pct\":" << FormatNum(s.efficiency_pct) << "}";
  }
  out << "],\"critical_path\":[";
  const CriticalPathReport path = AnalyzeCriticalPath(*this);
  for (std::size_t i = 0; i < path.chain.size(); ++i) {
    const CriticalPathReport::Node& n = path.chain[i];
    if (i > 0) out << ",";
    out << "{\"stage\":\"" << JsonEscape(n.stage)
        << "\",\"wall_ms\":" << FormatNum(n.wall_ms)
        << ",\"cpu_ms\":" << FormatNum(n.cpu_ms)
        << ",\"efficiency_pct\":" << FormatNum(n.efficiency_pct)
        << ",\"amdahl_speedup\":" << FormatNum(n.amdahl_speedup) << "}";
  }
  out << "],\"critical_path_ms\":" << FormatNum(path.total_wall_ms)
      << ",\"critical_path_covered_pct\":" << FormatNum(path.covered_pct)
      << "}";
  return out.str();
}

// ---------------------------------------------------------------------------
// Critical path.

CriticalPathReport AnalyzeCriticalPath(const EpochProfile& profile) {
  CriticalPathReport report;
  // Leaf spans only: a span strictly containing another is a phase envelope
  // (e.g. "cc" around acg_build/rank_division/tx_sorting) — its children are
  // the chain links, counting both would double the path.
  std::vector<const StageSpan*> leaves;
  for (const StageSpan& s : profile.spans) {
    bool envelope = false;
    for (const StageSpan& t : profile.spans) {
      if (&t == &s) continue;
      if (t.start_us >= s.start_us && t.end_us <= s.end_us &&
          (t.start_us > s.start_us || t.end_us < s.end_us)) {
        envelope = true;
        break;
      }
    }
    if (!envelope) leaves.push_back(&s);
  }
  std::sort(leaves.begin(), leaves.end(),
            [](const StageSpan* a, const StageSpan* b) {
              return a->start_us < b->start_us;
            });

  double total_ms = 0;
  for (const StageSpan* s : leaves) {
    total_ms += (s->end_us - s->start_us) / 1000.0;
  }
  const double workers =
      profile.workers > 0 ? static_cast<double>(profile.workers) : 1.0;
  for (const StageSpan* s : leaves) {
    CriticalPathReport::Node node;
    node.stage = std::string(StageName(s->stage));
    node.wall_ms = (s->end_us - s->start_us) / 1000.0;
    node.cpu_ms = s->cpu_us / 1000.0;
    for (const StageProfile& sp : profile.stages) {
      if (sp.stage == node.stage) {
        node.efficiency_pct = sp.efficiency_pct;
        node.cpu_ms = sp.cpu_ms;
        break;
      }
    }
    // Amdahl: epoch speedup if this stage alone ran at perfect efficiency
    // on all workers. Stages already near-perfect yield ~1.0.
    const double parallelized = total_ms - node.wall_ms + node.wall_ms / workers;
    node.amdahl_speedup = parallelized > 0 ? total_ms / parallelized : 1.0;
    report.chain.push_back(std::move(node));
  }
  report.total_wall_ms = total_ms;
  report.covered_pct =
      profile.span_ms > 0 ? 100.0 * total_ms / profile.span_ms : 0;

  report.bottlenecks = report.chain;
  std::sort(report.bottlenecks.begin(), report.bottlenecks.end(),
            [](const CriticalPathReport::Node& a,
               const CriticalPathReport::Node& b) {
              return a.wall_ms > b.wall_ms;
            });
  if (report.bottlenecks.size() > 3) report.bottlenecks.resize(3);
  return report;
}

// ---------------------------------------------------------------------------
// PipelineProfiler.

PipelineProfiler& PipelineProfiler::Global() {
  static PipelineProfiler* profiler = new PipelineProfiler();  // never freed
  return *profiler;
}

void PipelineProfiler::SetEnabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
  UpdateSampling();
}

void PipelineProfiler::BeginEpoch(std::uint64_t epoch, std::string_view scheme,
                                  std::size_t workers) {
  if (!enabled()) return;
  // Single-window batch path: any unfinished windows (and their buffered
  // stamps) are discarded wholesale before the new one opens.
  {
    MutexLock lock(epoch_mutex_);
    windows_.clear();
    spans_.clear();
  }
  for (Stripe& stripe : stripes_) {
    MutexLock lock(stripe.mutex);
    stripe.samples.clear();
  }
  sample_count_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  BeginEpochWindow(epoch, scheme, workers);
}

ProfileWindowId PipelineProfiler::BeginEpochWindow(std::uint64_t epoch,
                                                   std::string_view scheme,
                                                   std::size_t workers) {
  if (!enabled()) return kProfileWindowNone;
  ProfileWindowId id;
  {
    MutexLock lock(epoch_mutex_);
    if (windows_.size() >= kMaxWindows) {
      windows_.erase(windows_.begin());  // discard the oldest window
    }
    Window window;
    window.id = next_window_id_++;
    window.epoch = epoch;
    window.scheme = std::string(scheme);
    window.workers = static_cast<std::uint32_t>(workers);
    window.begin_us = PhaseTracer::NowUs();
    id = window.id;
    windows_.push_back(std::move(window));
  }
  t_profile_window = id;
  active_.store(true, std::memory_order_relaxed);
  UpdateSampling();
  return id;
}

bool PipelineProfiler::EpochActive() const {
  return active_.load(std::memory_order_relaxed);
}

void PipelineProfiler::RecordTask(const TaskSample& sample) {
  if (!Sampling()) return;
  if (sample_count_.fetch_add(1, std::memory_order_relaxed) >= kMaxSamples) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Stripe& stripe = stripes_[sample.tid % kStripes];
  MutexLock lock(stripe.mutex);
  stripe.samples.push_back(sample);
}

void PipelineProfiler::RecordSpan(const StageSpan& span) {
  if (!Sampling()) return;
  MutexLock lock(epoch_mutex_);
  spans_.push_back(span);
}

EpochProfile PipelineProfiler::FinishEpoch() {
  ProfileWindowId id;
  {
    MutexLock lock(epoch_mutex_);
    if (windows_.empty()) return {};
    id = windows_.front().id;
  }
  return FinishEpochWindow(id);
}

EpochProfile PipelineProfiler::FinishEpochWindow(ProfileWindowId id) {
  if (id == kProfileWindowNone) return {};
  const double end_us = PhaseTracer::NowUs();

  EpochProfile profile;
  std::vector<TaskSample> samples;
  bool claim_unbound = false;
  std::vector<ProfileWindowId> still_open;
  {
    MutexLock lock(epoch_mutex_);
    std::size_t idx = SIZE_MAX;
    for (std::size_t i = 0; i < windows_.size(); ++i) {
      if (windows_[i].id == id) {
        idx = i;
        break;
      }
    }
    if (idx == SIZE_MAX) return {};
    Window window = std::move(windows_[idx]);
    // The earliest-open window owns unbound (window-0) stamps: in the
    // pipeline, windows close oldest-first, so strays land with the epoch
    // that was in flight when they were recorded; with one window open
    // this is exactly the pre-pipelining behaviour.
    claim_unbound = idx == 0;
    windows_.erase(windows_.begin() + idx);
    for (const Window& w : windows_) still_open.push_back(w.id);
    active_.store(!windows_.empty(), std::memory_order_relaxed);
    UpdateSampling();
    if (t_profile_window == id) t_profile_window = kProfileWindowNone;

    profile.epoch = window.epoch;
    profile.scheme = window.scheme;
    profile.workers = window.workers;
    profile.span_ms = (end_us - window.begin_us) / 1000.0;

    std::vector<StageSpan> retained_spans;
    retained_spans.reserve(spans_.size());
    for (const StageSpan& s : spans_) {
      if (s.window == id ||
          (s.window == kProfileWindowNone && claim_unbound)) {
        profile.spans.push_back(s);
      } else if (s.window == kProfileWindowNone ||
                 std::find(still_open.begin(), still_open.end(), s.window) !=
                     still_open.end()) {
        retained_spans.push_back(s);  // another open window will claim it
      }  // else: stamp of an already-closed window — drop
    }
    spans_ = std::move(retained_spans);
  }
  std::size_t retained_count = 0;
  for (Stripe& stripe : stripes_) {
    MutexLock lock(stripe.mutex);
    std::vector<TaskSample> retained;
    retained.reserve(stripe.samples.size());
    for (const TaskSample& s : stripe.samples) {
      if (s.window == id ||
          (s.window == kProfileWindowNone && claim_unbound)) {
        samples.push_back(s);
      } else if (s.window == kProfileWindowNone ||
                 std::find(still_open.begin(), still_open.end(), s.window) !=
                     still_open.end()) {
        retained.push_back(s);
      }
    }
    stripe.samples = std::move(retained);
    retained_count += stripe.samples.size();
  }
  sample_count_.store(retained_count, std::memory_order_relaxed);
  profile.dropped_samples = dropped_.exchange(0, std::memory_order_relaxed);
  std::sort(profile.spans.begin(), profile.spans.end(),
            [](const StageSpan& a, const StageSpan& b) {
              return a.start_us < b.start_us;
            });

  // --- Per-stage aggregation (fixed array keyed by StageId — deterministic
  // first-intern order, no unordered iteration).
  struct StageAcc {
    bool seen = false;
    std::uint64_t tasks = 0;
    std::uint64_t inline_tasks = 0;
    double busy_us = 0;
    double task_cpu_us = 0;
    double span_cpu_us = 0;
    double span_wall_us = 0;
    std::uint64_t allocs = 0;
    double min_start = 0;
    double max_finish = 0;
    std::vector<double> waits;
  };
  std::vector<StageAcc> accs(kMaxStages);

  double busy_us_total = 0;
  double cpu_us_total = 0;
  for (const TaskSample& s : samples) {
    StageAcc& acc = accs[s.stage];
    const double run = s.finish_us - s.start_us;
    if (!acc.seen) {
      acc.seen = true;
      acc.min_start = s.start_us;
      acc.max_finish = s.finish_us;
    } else {
      acc.min_start = std::min(acc.min_start, s.start_us);
      acc.max_finish = std::max(acc.max_finish, s.finish_us);
    }
    ++acc.tasks;
    if (s.inlined) ++acc.inline_tasks;
    acc.busy_us += run;
    acc.task_cpu_us += s.cpu_us;
    acc.waits.push_back(s.start_us - s.enqueue_us);
    busy_us_total += run;
    cpu_us_total += s.cpu_us;
  }
  for (const StageSpan& s : profile.spans) {
    StageAcc& acc = accs[s.stage];
    acc.seen = true;
    // Sum only non-nested span wall per stage: a re-entered stage (several
    // spans) accumulates; nesting inside the same stage would double-count
    // but call sites don't nest a stage within itself.
    acc.span_wall_us += s.end_us - s.start_us;
    acc.span_cpu_us += s.cpu_us;
    acc.allocs += s.allocs;
    cpu_us_total += s.cpu_us;
  }

  const double workers_f =
      profile.workers > 0 ? static_cast<double>(profile.workers) : 1.0;
  for (std::size_t id = 0; id < accs.size(); ++id) {
    StageAcc& acc = accs[id];
    if (!acc.seen) continue;
    StageProfile sp;
    sp.stage = std::string(StageName(static_cast<StageId>(id)));
    sp.tasks = acc.tasks;
    sp.inline_tasks = acc.inline_tasks;
    // Stage wall: the ProfileSpan interval when one exists (authoritative —
    // covers serial driver work too), else the union extent of its tasks.
    sp.wall_ms = acc.span_wall_us > 0
                     ? acc.span_wall_us / 1000.0
                     : (acc.tasks > 0
                            ? (acc.max_finish - acc.min_start) / 1000.0
                            : 0);
    sp.busy_ms = acc.busy_us / 1000.0;
    sp.cpu_ms = (acc.task_cpu_us + acc.span_cpu_us) / 1000.0;
    sp.allocs = acc.allocs;
    if (!acc.waits.empty()) {
      std::sort(acc.waits.begin(), acc.waits.end());
      sp.wait_p50_us = SortedPercentile(acc.waits, 0.50);
      sp.wait_p95_us = SortedPercentile(acc.waits, 0.95);
      sp.wait_max_us = acc.waits.back();
    }
    if (sp.wall_ms > 0) {
      sp.efficiency_pct = 100.0 * sp.busy_ms / (workers_f * sp.wall_ms);
    }
    profile.stages.push_back(std::move(sp));
    profile.tasks += acc.tasks;
    profile.inline_tasks += acc.inline_tasks;
  }

  profile.busy_ms = busy_us_total / 1000.0;
  profile.cpu_ms = cpu_us_total / 1000.0;
  if (profile.span_ms > 0) {
    profile.efficiency_pct =
        100.0 * profile.busy_ms / (workers_f * profile.span_ms);
  }

  // --- Largest idle gap: per executing thread, the widest hole between its
  // task intervals inside the epoch window. Threads that never recorded a
  // sample can't be seen from here (the pool doesn't expose its tids to
  // obs), so when fewer distinct threads than `workers` sampled, the gap is
  // the whole span — an honest "at least one worker sat out the epoch".
  {
    double begin_us = end_us - profile.span_ms * 1000.0;
    struct ThreadIntervals {
      std::uint32_t tid;
      std::vector<std::pair<double, double>> runs;
    };
    std::vector<ThreadIntervals> threads;
    for (const TaskSample& s : samples) {
      ThreadIntervals* t = nullptr;
      for (ThreadIntervals& cand : threads) {
        if (cand.tid == s.tid) {
          t = &cand;
          break;
        }
      }
      if (t == nullptr) {
        threads.push_back({s.tid, {}});
        t = &threads.back();
      }
      t->runs.emplace_back(s.start_us, s.finish_us);
    }
    double gap_start = 0, gap_end = 0;
    if (profile.workers > 0 && threads.size() < profile.workers) {
      gap_start = begin_us;
      gap_end = end_us;
    } else {
      for (ThreadIntervals& t : threads) {
        std::sort(t.runs.begin(), t.runs.end());
        double cursor = begin_us;
        for (const auto& [start, finish] : t.runs) {
          if (start > cursor && start - cursor > gap_end - gap_start) {
            gap_start = cursor;
            gap_end = start;
          }
          cursor = std::max(cursor, finish);
        }
        if (end_us > cursor && end_us - cursor > gap_end - gap_start) {
          gap_start = cursor;
          gap_end = end_us;
        }
      }
    }
    profile.largest_idle_gap_ms = (gap_end - gap_start) / 1000.0;
    // The blocking stage: the recorded span overlapping the gap longest —
    // what the pipeline was doing while that worker starved.
    double best_overlap = 0;
    for (const StageSpan& s : profile.spans) {
      const double overlap = std::min(s.end_us, gap_end) -
                             std::max(s.start_us, gap_start);
      if (overlap > best_overlap) {
        best_overlap = overlap;
        profile.idle_gap_stage = std::string(StageName(s.stage));
      }
    }
  }

  profile.peak_rss_kb = PeakRssKb();

  PublishProfile(profile, samples);

  {
    MutexLock lock(epoch_mutex_);
    last_profile_ = profile;
  }
  return profile;
}

void PipelineProfiler::PublishProfile(const EpochProfile& profile,
                                      const std::vector<TaskSample>& samples) {
  if (MetricsEnabled()) {
    MetricsRegistry& reg = Registry();
    for (const StageProfile& sp : profile.stages) {
      const Labels labels = {{"stage", sp.stage}};
      reg.GetCounter("nezha_profile_stage_cpu_us_total", labels)
          ->Inc(static_cast<std::uint64_t>(sp.cpu_ms * 1000.0));
      reg.GetCounter("nezha_profile_stage_busy_us_total", labels)
          ->Inc(static_cast<std::uint64_t>(sp.busy_ms * 1000.0));
      reg.GetCounter("nezha_profile_stage_wall_us_total", labels)
          ->Inc(static_cast<std::uint64_t>(sp.wall_ms * 1000.0));
      reg.GetCounter("nezha_profile_stage_tasks_total", labels)->Inc(sp.tasks);
    }
    std::vector<double> waits;
    waits.reserve(samples.size());
    double task_cpu_us = 0;
    for (const TaskSample& s : samples) {
      waits.push_back(s.start_us - s.enqueue_us);
      task_cpu_us += s.cpu_us;
    }
    reg.GetHistogram("nezha_pool_task_wait_profile_us", {},
                     DefaultLatencyBoundsUs())
        ->ObserveMany(waits);
    reg.GetCounter("nezha_pool_task_cpu_us_total")
        ->Inc(static_cast<std::uint64_t>(task_cpu_us));
    reg.GetHistogram("nezha_profile_efficiency_pct", {}, EfficiencyBounds())
        ->Observe(profile.efficiency_pct);
    reg.GetHistogram("nezha_profile_idle_gap_us", {}, DefaultLatencyBoundsUs())
        ->Observe(profile.largest_idle_gap_ms * 1000.0);
    reg.GetGauge("nezha_profile_peak_rss_kb")
        ->Set(static_cast<std::int64_t>(profile.peak_rss_kb));
    reg.GetCounter("nezha_profile_dropped_samples_total")
        ->Inc(profile.dropped_samples);
    reg.GetCounter("nezha_profile_epochs_total")->Inc();
  }

  // Chrome counter tracks: pool occupancy and queue depth over the epoch,
  // rebuilt from the stamps (coalesced; see kMaxCounterPoints).
  PhaseTracer& tracer = PhaseTracer::Global();
  if (tracer.enabled() && !samples.empty()) {
    std::vector<std::pair<double, int>> busy;
    std::vector<std::pair<double, int>> queued;
    busy.reserve(samples.size() * 2);
    queued.reserve(samples.size() * 2);
    for (const TaskSample& s : samples) {
      busy.emplace_back(s.start_us, +1);
      busy.emplace_back(s.finish_us, -1);
      if (!s.inlined) {
        queued.emplace_back(s.enqueue_us, +1);
        queued.emplace_back(s.start_us, -1);
      }
    }
    std::sort(busy.begin(), busy.end());
    std::sort(queued.begin(), queued.end());
    EmitCounterTrack(tracer, "pool_busy_workers", busy);
    EmitCounterTrack(tracer, "pool_queued_tasks", queued);
  }
}

EpochProfile PipelineProfiler::LastProfile() const {
  MutexLock lock(epoch_mutex_);
  return last_profile_;
}

void PipelineProfiler::Clear() {
  active_.store(false, std::memory_order_relaxed);
  UpdateSampling();
  {
    MutexLock lock(epoch_mutex_);
    windows_.clear();
    spans_.clear();
    last_profile_ = EpochProfile{};
  }
  for (Stripe& stripe : stripes_) {
    MutexLock lock(stripe.mutex);
    stripe.samples.clear();
  }
  sample_count_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace nezha::obs
