#include "obs/tx_lifecycle.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace nezha::obs {
namespace {

/// Interpolated percentile of an ascending-sorted sample vector.
double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// Sorts `values` in place and summarizes it.
StageWaitSummary Summarize(std::vector<double>& values) {
  StageWaitSummary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  double sum = 0;
  for (double v : values) sum += v;
  s.mean_ms = sum / static_cast<double>(values.size());
  s.max_ms = values.back();
  s.p50_ms = PercentileSorted(values, 50);
  s.p95_ms = PercentileSorted(values, 95);
  s.p99_ms = PercentileSorted(values, 99);
  return s;
}

std::string FmtMs(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Which epoch slot this thread's stamps target (BindEpochForThread). The
/// owner pointer keeps bindings from leaking across tracer instances; slot
/// ids are never reused, so a stale id simply fails to resolve.
struct LifecycleBinding {
  const void* owner = nullptr;
  std::uint64_t slot_id = 0;
  bool bound = false;
};
thread_local LifecycleBinding t_lc_binding;

void AppendSummaryJson(std::ostringstream& out, const StageWaitSummary& s) {
  out << "{\"count\":" << s.count << ",\"mean\":" << FmtMs(s.mean_ms)
      << ",\"p50\":" << FmtMs(s.p50_ms) << ",\"p95\":" << FmtMs(s.p95_ms)
      << ",\"p99\":" << FmtMs(s.p99_ms) << ",\"max\":" << FmtMs(s.max_ms)
      << "}";
}

}  // namespace

const char* TxStageName(TxStage stage) {
  switch (stage) {
    case TxStage::kSubmitted:
      return "submitted";
    case TxStage::kIncluded:
      return "included";
    case TxStage::kConfirmed:
      return "confirmed";
    case TxStage::kScheduled:
      return "scheduled";
    case TxStage::kExecuted:
      return "executed";
    case TxStage::kCommitted:
      return "committed";
    case TxStage::kAborted:
      return "aborted";
  }
  return "?";
}

const char* StageWaitName(std::size_t wait) {
  switch (wait) {
    case 0:
      return "include";
    case 1:
      return "confirm";
    case 2:
      return "schedule";
    case 3:
      return "execute";
    case 4:
      return "commit";
    default:
      return "?";
  }
}

double TxLifetime::EndToEndMs() const {
  const double end = aborted ? StampUs(TxStage::kAborted)
                             : StampUs(TxStage::kCommitted);
  if (end < 0) return -1;
  for (std::size_t i = 0; i < kNumTxStages; ++i) {
    if (stamp_us[i] >= 0) return (end - stamp_us[i]) / 1000.0;
  }
  return -1;
}

double TxLifetime::WaitMs(std::size_t wait) const {
  if (wait >= kNumStageWaits) return -1;
  // Wait w spans stage w -> stage w+1 (submitted..committed are stages
  // 0..5, so wait indices line up with their earlier endpoint).
  const double from = stamp_us[wait];
  const double to = stamp_us[wait + 1];
  if (from < 0 || to < 0) return -1;
  return (to - from) / 1000.0;
}

std::string EpochLatencySummary::ToJson() const {
  std::ostringstream out;
  out << "{\"epoch\":" << epoch << ",\"scheme\":\"" << scheme
      << "\",\"tracked\":" << tracked << ",\"committed\":" << committed
      << ",\"aborted\":" << aborted << ",\"e2e_ms\":";
  AppendSummaryJson(out, e2e);
  out << ",\"stage_wait_ms\":{";
  for (std::size_t w = 0; w < kNumStageWaits; ++w) {
    if (w > 0) out << ",";
    out << "\"" << StageWaitName(w) << "\":";
    AppendSummaryJson(out, waits[w]);
  }
  out << "},\"slowest\":[";
  for (std::size_t i = 0; i < slowest.size(); ++i) {
    const SlowTx& slow = slowest[i];
    if (i > 0) out << ",";
    out << "{\"key\":" << slow.key << ",\"tx\":" << slow.tx
        << ",\"e2e_ms\":" << FmtMs(slow.e2e_ms) << ",\"waits_ms\":{";
    bool first = true;
    for (std::size_t w = 0; w < kNumStageWaits; ++w) {
      if (slow.wait_ms[w] < 0) continue;  // wait not observed
      if (!first) out << ",";
      first = false;
      out << "\"" << StageWaitName(w) << "\":" << FmtMs(slow.wait_ms[w]);
    }
    out << "}}";
  }
  out << "]}";
  return out.str();
}

TxLifecycleTracer& TxLifecycleTracer::Global() {
  static TxLifecycleTracer* tracer = new TxLifecycleTracer();  // never freed
  return *tracer;
}

double TxLifecycleTracer::NowUs() { return PhaseTracer::NowUs(); }

void TxLifecycleTracer::StampIngress(std::uint64_t key, TxStage stage) {
  if (!enabled()) return;
  const double now = NowUs();
  IngressStripe& stripe = StripeFor(key);
  MutexLock lock(stripe.mutex);
  auto it = stripe.entries.find(key);
  if (it == stripe.entries.end()) {
    if (stripe.entries.size() >= kMaxIngressPerStripe) {
      Registry().GetCounter("nezha_tx_lifecycle_dropped_total")->Inc();
      return;
    }
    it = stripe.entries.emplace(key, IngressEntry{}).first;
    ingress_count_.fetch_add(1, std::memory_order_relaxed);
  }
  if (stage == TxStage::kSubmitted) {
    it->second.submitted_us = now;
  } else {
    it->second.included_us = now;
  }
}

void TxLifecycleTracer::StampIngressBatch(
    std::span<const std::uint64_t> keys, TxStage stage) {
  if (!enabled() || keys.empty()) return;
  const double now = NowUs();
  for (const std::uint64_t key : keys) {
    IngressStripe& stripe = StripeFor(key);
    MutexLock lock(stripe.mutex);
    auto it = stripe.entries.find(key);
    if (it == stripe.entries.end()) {
      if (stripe.entries.size() >= kMaxIngressPerStripe) {
        Registry().GetCounter("nezha_tx_lifecycle_dropped_total")->Inc();
        continue;
      }
      it = stripe.entries.emplace(key, IngressEntry{}).first;
      ingress_count_.fetch_add(1, std::memory_order_relaxed);
    }
    if (stage == TxStage::kSubmitted) {
      it->second.submitted_us = now;
    } else {
      it->second.included_us = now;
    }
  }
}

void TxLifecycleTracer::DropIngress(std::uint64_t key) {
  IngressStripe& stripe = StripeFor(key);
  MutexLock lock(stripe.mutex);
  if (stripe.entries.erase(key) > 0) {
    ingress_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::size_t TxLifecycleTracer::IngressCount() const {
  std::size_t count = 0;
  for (const IngressStripe& stripe : ingress_) {
    MutexLock lock(stripe.mutex);
    count += stripe.entries.size();
  }
  return count;
}

bool TxLifecycleTracer::ClaimIngress(std::uint64_t key, IngressEntry* out) {
  IngressStripe& stripe = StripeFor(key);
  MutexLock lock(stripe.mutex);
  const auto it = stripe.entries.find(key);
  if (it == stripe.entries.end()) return false;
  *out = it->second;
  stripe.entries.erase(it);
  ingress_count_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

std::uint64_t TxLifecycleTracer::BeginEpoch(
    std::uint64_t epoch, std::string_view scheme,
    std::span<const std::uint64_t> keys) {
  if (!enabled()) return 0;
  // When no producer ever stamped ingress (benches, drivers without a
  // mempool), skip the per-key claim lookups — they are the dominant cost
  // of opening an epoch.
  const bool claim =
      ingress_count_.load(std::memory_order_relaxed) > 0;
  std::vector<TxLifetime> lifetimes(keys.size());
  for (std::size_t t = 0; t < keys.size(); ++t) {
    TxLifetime& life = lifetimes[t];
    life.key = keys[t];
    life.tx = static_cast<std::uint32_t>(t);
    IngressEntry entry;
    if (claim && ClaimIngress(keys[t], &entry)) {
      life.stamp_us[static_cast<std::size_t>(TxStage::kSubmitted)] =
          entry.submitted_us;
      life.stamp_us[static_cast<std::size_t>(TxStage::kIncluded)] =
          entry.included_us;
    }
  }
  MutexLock lock(epoch_mutex_);
  if (slots_.size() >= kMaxOpenEpochs) {
    slots_.erase(slots_.begin());  // discard the oldest unfinished epoch
  }
  EpochSlot slot;
  slot.id = next_slot_id_++;
  slot.epoch = epoch;
  slot.scheme = std::string(scheme);
  slot.lifetimes = std::move(lifetimes);
  slots_.push_back(std::move(slot));
  t_lc_binding = LifecycleBinding{this, slots_.back().id, true};
  return slots_.back().id;
}

void TxLifecycleTracer::BindEpochForThread(std::uint64_t slot_id) {
  t_lc_binding = LifecycleBinding{this, slot_id, true};
}

void TxLifecycleTracer::UnbindThread() {
  if (t_lc_binding.owner == this) t_lc_binding = LifecycleBinding{};
}

TxLifecycleTracer::EpochSlot* TxLifecycleTracer::ResolveSlot() {
  if (t_lc_binding.bound && t_lc_binding.owner == this) {
    for (EpochSlot& slot : slots_) {
      if (slot.id == t_lc_binding.slot_id) return &slot;
    }
  }
  return slots_.empty() ? nullptr : &slots_.back();
}

bool TxLifecycleTracer::EpochActive() const {
  MutexLock lock(epoch_mutex_);
  return !slots_.empty();
}

std::size_t TxLifecycleTracer::CurrentEpochSize() const {
  MutexLock lock(epoch_mutex_);
  EpochSlot* slot = const_cast<TxLifecycleTracer*>(this)->ResolveSlot();
  return slot != nullptr ? slot->lifetimes.size() : 0;
}

void TxLifecycleTracer::StampAll(TxStage stage) {
  if (!enabled()) return;
  const double now = NowUs();
  const auto s = static_cast<std::size_t>(stage);
  MutexLock lock(epoch_mutex_);
  EpochSlot* slot = ResolveSlot();
  if (slot == nullptr) return;
  for (TxLifetime& life : slot->lifetimes) {
    if (life.aborted) continue;
    life.stamp_us[s] = now;
  }
}

void TxLifecycleTracer::StampTxs(std::span<const std::uint32_t> txs,
                                 TxStage stage) {
  if (!enabled()) return;
  const double now = NowUs();
  const auto s = static_cast<std::size_t>(stage);
  MutexLock lock(epoch_mutex_);
  EpochSlot* slot = ResolveSlot();
  if (slot == nullptr) return;
  for (const std::uint32_t tx : txs) {
    if (tx < slot->lifetimes.size()) slot->lifetimes[tx].stamp_us[s] = now;
  }
}

void TxLifecycleTracer::StampTx(std::uint32_t tx, TxStage stage) {
  const std::uint32_t one[] = {tx};
  StampTxs(one, stage);
}

void TxLifecycleTracer::MarkAborted(std::uint32_t tx, std::uint8_t kind) {
  const std::pair<std::uint32_t, std::uint8_t> one[] = {{tx, kind}};
  MarkAbortedBatch(one);
}

void TxLifecycleTracer::MarkAbortedBatch(
    std::span<const std::pair<std::uint32_t, std::uint8_t>> aborts) {
  if (!enabled() || aborts.empty()) return;
  const double now = NowUs();
  MutexLock lock(epoch_mutex_);
  EpochSlot* slot = ResolveSlot();
  if (slot == nullptr) return;
  for (const auto& [tx, kind] : aborts) {
    if (tx >= slot->lifetimes.size()) continue;
    TxLifetime& life = slot->lifetimes[tx];
    life.aborted = true;
    life.abort_kind = kind;
    life.stamp_us[static_cast<std::size_t>(TxStage::kAborted)] = now;
  }
}

EpochLatencySummary TxLifecycleTracer::FinishEpoch(std::size_t top_k) {
  EpochLatencySummary summary;
  std::vector<double> e2e;
  std::array<std::vector<double>, kNumStageWaits> waits;
  std::vector<TxLifetime> lifetimes;
  {
    MutexLock lock(epoch_mutex_);
    EpochSlot* slot = ResolveSlot();
    if (slot == nullptr) return summary;
    summary.epoch = slot->epoch;
    summary.scheme = slot->scheme;
    summary.tracked = static_cast<std::uint32_t>(slot->lifetimes.size());
    lifetimes = std::move(slot->lifetimes);
    const std::uint64_t closed_id = slot->id;
    slots_.erase(slots_.begin() + (slot - slots_.data()));
    if (t_lc_binding.owner == this && t_lc_binding.slot_id == closed_id) {
      t_lc_binding = LifecycleBinding{};
    }

    e2e.reserve(lifetimes.size());
    for (const TxLifetime& life : lifetimes) {
      if (life.aborted) {
        ++summary.aborted;
        continue;
      }
      if (!life.HasStage(TxStage::kCommitted)) continue;
      ++summary.committed;
      const double total = life.EndToEndMs();
      if (total >= 0) e2e.push_back(total);
      for (std::size_t w = 0; w < kNumStageWaits; ++w) {
        const double wait = life.WaitMs(w);
        if (wait >= 0) waits[w].push_back(wait);
      }
    }

    // Top-K slowest committed transactions, descending end-to-end latency.
    std::vector<const TxLifetime*> committed;
    committed.reserve(summary.committed);
    for (const TxLifetime& life : lifetimes) {
      if (!life.aborted && life.HasStage(TxStage::kCommitted) &&
          life.EndToEndMs() >= 0) {
        committed.push_back(&life);
      }
    }
    const std::size_t keep = std::min(top_k, committed.size());
    std::partial_sort(committed.begin(), committed.begin() + keep,
                      committed.end(),
                      [](const TxLifetime* a, const TxLifetime* b) {
                        return a->EndToEndMs() > b->EndToEndMs();
                      });
    summary.slowest.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i) {
      EpochLatencySummary::SlowTx slow;
      slow.key = committed[i]->key;
      slow.tx = committed[i]->tx;
      slow.e2e_ms = committed[i]->EndToEndMs();
      for (std::size_t w = 0; w < kNumStageWaits; ++w) {
        slow.wait_ms[w] = committed[i]->WaitMs(w);
      }
      summary.slowest.push_back(slow);
    }

    last_lifetimes_ = std::move(lifetimes);
  }

  summary.e2e = Summarize(e2e);
  for (std::size_t w = 0; w < kNumStageWaits; ++w) {
    summary.waits[w] = Summarize(waits[w]);
  }

  if (MetricsEnabled() && summary.tracked > 0) {
    auto& registry = Registry();
    const Labels by_scheme = {{"scheme", summary.scheme}};
    registry
        .GetHistogram("nezha_tx_e2e_ms", by_scheme, DefaultLatencyBoundsMs())
        ->ObserveMany(e2e);
    for (std::size_t w = 0; w < kNumStageWaits; ++w) {
      registry
          .GetHistogram("nezha_tx_stage_wait_ms",
                        {{"scheme", summary.scheme},
                         {"stage", StageWaitName(w)}},
                        DefaultLatencyBoundsMs())
          ->ObserveMany(waits[w]);
    }
    registry.GetCounter("nezha_tx_lifecycle_committed_total", by_scheme)
        ->Inc(summary.committed);
    registry.GetCounter("nezha_tx_lifecycle_aborted_total", by_scheme)
        ->Inc(summary.aborted);
    registry.GetCounter("nezha_tx_lifecycle_epochs_total", by_scheme)->Inc();
  }

  {
    MutexLock lock(epoch_mutex_);
    last_summary_ = summary;
  }
  return summary;
}

std::vector<TxLifetime> TxLifecycleTracer::LastEpochLifetimes() const {
  MutexLock lock(epoch_mutex_);
  return last_lifetimes_;
}

EpochLatencySummary TxLifecycleTracer::LastSummary() const {
  MutexLock lock(epoch_mutex_);
  return last_summary_;
}

void TxLifecycleTracer::Clear() {
  for (IngressStripe& stripe : ingress_) {
    MutexLock lock(stripe.mutex);
    ingress_count_.fetch_sub(stripe.entries.size(),
                             std::memory_order_relaxed);
    stripe.entries.clear();
  }
  MutexLock lock(epoch_mutex_);
  slots_.clear();
  last_lifetimes_.clear();
  last_summary_ = EpochLatencySummary{};
}

}  // namespace nezha::obs
