// Process-wide metrics registry — the observability substrate every layer
// of the pipeline reports into (docs/OBSERVABILITY.md).
//
// Three metric kinds:
//   * Counter        — monotonically increasing uint64 (events, bytes, txs);
//   * Gauge          — last-set int64 (queue depth, graph size);
//   * BucketHistogram— bounded-bucket distribution (latencies) with atomic
//                      per-bucket counts, sum, min and max. Unlike
//                      common/histogram.h it never stores raw samples, so a
//                      week-long run costs the same memory as a short one.
//
// The registry is lock-striped: metric lookup/creation takes one stripe
// mutex keyed by the metric's full name; recording on an already-obtained
// metric pointer is entirely lock-free (relaxed atomics). Hot paths fetch
// the pointer once (constructor or function-local static) and then only pay
// an atomic add per event.
//
// `SetMetricsEnabled(false)` turns every Record/Inc/Set into a near-no-op
// (one relaxed load) — bench/microbench uses it to price the
// instrumentation itself.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace nezha::obs {

/// Global kill-switch checked by every recording call (relaxed load).
/// Metrics are enabled by default.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

/// One metric label, e.g. {"scheme", "nezha"}. Label sets are canonicalised
/// (sorted by key) so {a,b} and {b,a} name the same metric.
struct Label {
  std::string key;
  std::string value;
};
using Labels = std::vector<Label>;

/// Serialises labels as `{k1="v1",k2="v2"}` (empty string when no labels) —
/// the Prometheus exposition form, also used as the registry map key suffix.
std::string RenderLabels(const Labels& labels);

class Counter {
 public:
  void Inc(std::uint64_t n = 1) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(std::int64_t v) {
    if (!MetricsEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Upper bounds suited to microsecond latencies spanning 1us..10s.
const std::vector<double>& DefaultLatencyBoundsUs();
/// Upper bounds suited to millisecond latencies spanning 0.01ms..60s.
const std::vector<double>& DefaultLatencyBoundsMs();
/// Upper bounds suited to sizes/counts spanning 1..1e9 (powers of ~4).
const std::vector<double>& DefaultSizeBounds();

/// Point-in-time copy of one histogram (see BucketHistogram::Snapshot).
struct HistogramData {
  std::vector<double> bounds;         ///< ascending; implicit +inf last
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 buckets
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;  ///< 0 when empty
  double max = 0;

  double Mean() const {
    return count == 0 ? 0 : sum / static_cast<double>(count);
  }
  /// Approximate percentile by linear interpolation inside the bucket.
  double Percentile(double p) const;
};

class BucketHistogram {
 public:
  explicit BucketHistogram(std::vector<double> bounds);

  void Observe(double value);
  /// Bulk observe: buckets values locally and publishes one fetch_add per
  /// touched bucket plus one sum/min/max update, so epoch-sized batches
  /// (thousands of latencies) cost dozens of atomics instead of thousands.
  void ObserveMany(std::span<const double> values);
  HistogramData Snapshot() const;
  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric in a registry snapshot.
struct MetricSample {
  std::string name;
  std::string labels;  ///< rendered, e.g. {phase="commit"}
  MetricKind kind = MetricKind::kCounter;
  double value = 0;  ///< counter/gauge value; histogram sum
  HistogramData histogram;

  std::string FullName() const { return name + labels; }
};

/// A stable point-in-time view of the whole registry.
struct RegistrySnapshot {
  std::vector<MetricSample> samples;  ///< sorted by FullName()

  const MetricSample* Find(std::string_view name,
                           std::string_view labels = "") const;
  /// Counter/gauge value (histograms: sum); 0 when absent.
  double Value(std::string_view name, std::string_view labels = "") const;
  /// Sum of every sample of `name` across all label sets.
  double SumAcrossLabels(std::string_view name) const;
};

/// Lock-striped process-wide registry. Use MetricsRegistry::Global().
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Finds or creates; the returned pointer is valid for the registry's
  /// lifetime (metrics are never destroyed, only Reset()).
  Counter* GetCounter(std::string_view name, const Labels& labels = {});
  Gauge* GetGauge(std::string_view name, const Labels& labels = {});
  /// `bounds` applies on first creation only (ascending upper bounds).
  BucketHistogram* GetHistogram(std::string_view name,
                                const Labels& labels = {},
                                const std::vector<double>& bounds =
                                    DefaultLatencyBoundsUs());

  RegistrySnapshot Snapshot() const;

  /// Prometheus-style text exposition of the whole registry.
  std::string RenderText() const;

  /// Zeroes every registered metric (pointers stay valid). Tests and
  /// long-running tools use this to take per-interval deltas.
  void ResetAll();

  std::size_t MetricCount() const;

 private:
  struct Entry {
    MetricKind kind;
    std::string name;    ///< base name
    std::string labels;  ///< rendered labels
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<BucketHistogram> histogram;
  };

  static constexpr std::size_t kStripes = 16;

  struct Stripe {
    mutable Mutex mutex;
    // Key: name + rendered labels. unique_ptr keeps Entry addresses stable.
    std::vector<std::unique_ptr<Entry>> entries GUARDED_BY(mutex);
  };

  Entry* FindOrCreate(std::string_view name, const Labels& labels,
                      MetricKind kind, const std::vector<double>* bounds);

  std::array<Stripe, kStripes> stripes_;
};

/// Shorthand for MetricsRegistry::Global().
inline MetricsRegistry& Registry() { return MetricsRegistry::Global(); }

}  // namespace nezha::obs
