// Abort attribution — the causal vocabulary behind every abort the
// concurrency-control layer produces (docs/OBSERVABILITY.md).
//
// The schedulers can *count* aborts (nezha_scheduler_aborts_total), but a
// count cannot answer "which address, which conflict kind, which rank
// decision killed this transaction?". This header defines the per-abort
// record the sorters emit at the decision point, the per-schedule
// attribution bundle a Schedule carries out of BuildSchedule, and the
// rollup (per-cause totals + top-K hot addresses) that feeds both the
// metrics registry and the flight recorder.
//
// Layering: src/obs sits below everything (links only Threads), so the
// types here use raw integers — `address` is Address::value, `tx` is a
// TxIndex — rather than the ledger types.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace nezha::obs {

/// Why a transaction aborted — the taxonomy of §IV's conflict analysis.
enum class ConflictKind : std::uint8_t {
  /// Read-write conflict: two read-modify-write transactions on one address
  /// (each would have to both precede and follow the other under snapshot
  /// reads), or a read-writer that could not be seated above the reads.
  kReadWrite = 0,
  /// Write-write conflict (duplicate write sequence number) that the §IV.D
  /// reordering enhancement could not legally re-seat.
  kWriteWriteUnreorderable,
  /// The write unit's previously assigned number landed at or below the
  /// address's maximum read number — the unserializability signature caused
  /// by a cycle in the address-dependency graph (Algorithm 1 had to break
  /// a cycle to keep ranking).
  kRankCycle,
  /// Application-level revert: the transaction's own execution failed
  /// (rwset.ok == false); it never entered the conflict graph.
  kReverted,
};
inline constexpr std::size_t kNumConflictKinds = 4;

const char* ConflictKindName(ConflictKind kind);

/// Why a §IV.D reorder attempt did not rescue the transaction.
enum class ReorderFailure : std::uint8_t {
  /// No attempt was made: reordering disabled, or the conflict kind is not
  /// reorderable (read-write conflicts cannot move above their own reads).
  kNotAttempted = 0,
  /// Every candidate number at or above the target collides with a write or
  /// crosses the read-side upper bound: raising the transaction would order
  /// a committed write on an already-sorted address before one of its reads.
  kUpperBoundHit,
};

const char* ReorderFailureName(ReorderFailure failure);

/// One abort decision, emitted at the point the sorter makes it.
struct AbortRecord {
  std::uint32_t tx = 0;            ///< TxIndex of the aborted transaction
  std::uint64_t address = 0;       ///< Address::value where the decision fell
                                   ///< (0 when unattributed, e.g. reverts)
  ConflictKind kind = ConflictKind::kReadWrite;
  std::uint64_t seq_at_decision = 0;  ///< the tx's sequence number when judged
  bool reorder_attempted = false;     ///< §IV.D raise was tried
  ReorderFailure reorder_failure = ReorderFailure::kNotAttempted;
};

/// Read/write population and abort count of one address (ACG entry).
struct AddressHeat {
  std::uint64_t address = 0;
  std::uint32_t readers = 0;
  std::uint32_t writers = 0;
  std::uint32_t aborts = 0;  ///< abort records attributed to this address
};

/// Rank-division (Algorithm 1) decision counters for one build.
struct RankDecisionStats {
  std::uint64_t zero_indegree_pops = 0;  ///< lines 9-12: plain topo progress
  std::uint64_t cycle_breaks = 0;        ///< lines 14-21 fired at all
  /// Which tie-break rule decided each cycle-break:
  std::uint64_t tiebreak_min_indegree = 0;  ///< single min-in-degree candidate
  std::uint64_t tiebreak_out_degree = 0;    ///< out-degree separated the field
  std::uint64_t tiebreak_subscript = 0;     ///< fell through to min subscript
};

/// Everything BuildSchedule learned about one batch's conflicts, carried on
/// the Schedule so the node, the flight recorder and the benches all read
/// the same attribution.
struct ScheduleAttribution {
  std::vector<AbortRecord> aborts;
  /// Top-K addresses by (aborts, population) — K chosen by the producer.
  std::vector<AddressHeat> hot_addresses;
  RankDecisionStats rank;
  std::uint64_t reorder_attempts = 0;  ///< §IV.D raises performed
  std::uint64_t reorder_commits = 0;   ///< raised transactions that committed
};

/// Aggregated view of one or more attribution bundles.
struct AttributionRollup {
  std::array<std::uint64_t, kNumConflictKinds> by_kind{};
  std::vector<AddressHeat> hot_addresses;  ///< top-K, merged by address
  std::uint64_t total_aborts = 0;
  std::uint64_t reorder_attempts = 0;
  std::uint64_t reorder_commits = 0;

  std::uint64_t Kind(ConflictKind kind) const {
    return by_kind[static_cast<std::size_t>(kind)];
  }
  /// Scheduler-caused aborts (everything except application reverts).
  std::uint64_t ConflictAborts() const {
    return total_aborts - Kind(ConflictKind::kReverted);
  }
  /// Folds another rollup in (hot addresses re-merged, re-trimmed to k).
  void Merge(const AttributionRollup& other, std::size_t k = 8);
};

/// Builds a rollup from one attribution bundle.
AttributionRollup BuildRollup(const ScheduleAttribution& attribution,
                              std::size_t k = 8);

/// Sorts `heat` by (aborts desc, readers+writers desc, address asc) and
/// trims it to the k hottest entries.
void SelectTopK(std::vector<AddressHeat>& heat, std::size_t k);

/// Publishes a rollup into the global metrics registry:
///   * nezha_abort_cause_total{scheduler,cause}   — counter per cause;
///   * nezha_reorder_attempts_total / nezha_reorder_commits_total
///     {scheduler} — §IV.D activity;
///   * nezha_hot_address_aborts / nezha_hot_address_id{scheduler,rank} —
///     gauges describing the last build's hottest addresses.
void PublishAttribution(std::string_view scheduler,
                        const AttributionRollup& rollup);

}  // namespace nezha::obs
