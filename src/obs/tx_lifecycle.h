// Per-transaction lifecycle tracer — answers "how long did tx X take from
// submission to durable commit, and where did it wait?"
// (docs/OBSERVABILITY.md, "Transaction lifecycle").
//
// Each tracked transaction records one wall-clock stamp per pipeline stage:
//
//   submitted -> included -> confirmed -> scheduled -> executed -> committed
//                                                                (or aborted)
//
// Two storage tiers keep the hot path cheap:
//   * an INGRESS table — lock-striped, keyed by a cheap 64-bit transaction
//     key (LifecycleKey) — holds the pre-pipeline stamps (submitted at
//     mempool admission, included when a miner drains the tx into a block);
//   * an EPOCH table — a dense vector indexed by TxIndex — holds every
//     in-pipeline stage. BeginEpoch claims the batch's ingress entries into
//     the epoch table once; after that every stamp is an O(1) array write,
//     and batch stamps (StampAll / StampTxs) read the clock once per call.
//
// FinishEpoch rolls the epoch into per-scheme histograms (nezha_tx_e2e_ms,
// nezha_tx_stage_wait_ms{stage}) via one bulk observe per series, and
// returns an EpochLatencySummary — exact p50/p95/p99 over the epoch plus
// the top-K slowest transactions with their stage breakdown — which the
// node folds into the EpochReport and the epoch flight record.
//
// Threading: the ingress tier accepts concurrent stamps (clients submit
// while miners drain). The epoch tier holds a small fixed number of open
// epoch SLOTS (kMaxOpenEpochs) so the cross-epoch pipeline can have epoch N
// mid-commit on one thread while epoch N+1 opens on another: BeginEpoch
// returns a slot id and binds the calling thread to it;
// BindEpochForThread(id) routes another thread's stamps to the same slot.
// Unbound threads resolve to the newest open slot — exactly the
// pre-pipelining single-slot behaviour. Opening beyond the cap discards the
// oldest unfinished epoch. All epoch-tier operations take one mutex so
// concurrent stampers and readers (tests, exporters) are safe.
//
// The tracer is ON by default and kill-switched like the metrics registry:
// when disabled, every stamp is one relaxed load.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace nezha::obs {

/// Pipeline stages a transaction moves through. kAborted is terminal and
/// mutually exclusive with kCommitted.
enum class TxStage : std::uint8_t {
  kSubmitted = 0,  ///< admitted to the mempool
  kIncluded,       ///< drained into a block payload
  kConfirmed,      ///< the carrying block's epoch is DAG-confirmed/sealed
  kScheduled,      ///< concurrency control done (ACG + sort)
  kExecuted,       ///< commit-group execution finished
  kCommitted,      ///< durably committed (journal + atomic batch applied)
  kAborted,        ///< terminal abort (carries a ConflictKind)
};
inline constexpr std::size_t kNumTxStages = 7;

const char* TxStageName(TxStage stage);

/// The five hand-off waits between consecutive stages, in order:
/// include (submitted->included), confirm (included->confirmed), schedule
/// (confirmed->scheduled), execute (scheduled->executed), commit
/// (executed->committed).
inline constexpr std::size_t kNumStageWaits = 5;

const char* StageWaitName(std::size_t wait);

/// One transaction's recorded stamps. Stamps are microseconds on the
/// process-wide tracer clock; kUnstamped marks a stage the transaction
/// never reached (schemes skip stages: Serial has no scheduling).
struct TxLifetime {
  static constexpr double kUnstamped = -1.0;

  std::uint64_t key = 0;   ///< LifecycleKey (0 when unknown)
  std::uint32_t tx = 0;    ///< TxIndex within its epoch batch
  std::array<double, kNumTxStages> stamp_us{
      kUnstamped, kUnstamped, kUnstamped, kUnstamped,
      kUnstamped, kUnstamped, kUnstamped};
  bool aborted = false;
  std::uint8_t abort_kind = 0;  ///< obs::ConflictKind when aborted

  double StampUs(TxStage stage) const {
    return stamp_us[static_cast<std::size_t>(stage)];
  }
  bool HasStage(TxStage stage) const { return StampUs(stage) >= 0; }

  /// End-to-end latency in ms: first recorded stamp to the terminal stamp
  /// (committed, or aborted). Negative when no terminal stage was reached.
  double EndToEndMs() const;

  /// Wait `w` (see StageWaitName) in ms; negative when either endpoint is
  /// missing.
  double WaitMs(std::size_t wait) const;
};

/// Exact (nearest-rank, interpolated) percentiles of one stage-wait
/// population within one epoch.
struct StageWaitSummary {
  std::uint64_t count = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
};

/// Per-epoch latency decomposition: the histogram summary plus the top-K
/// slowest transactions with their full stage breakdown. Folded into the
/// EpochReport and the epoch flight record (the "latency" JSON object).
struct EpochLatencySummary {
  std::uint64_t epoch = 0;
  std::string scheme;
  std::uint32_t tracked = 0;    ///< lifetimes in the epoch table
  std::uint32_t committed = 0;  ///< reached kCommitted
  std::uint32_t aborted = 0;    ///< marked aborted

  StageWaitSummary e2e;  ///< end-to-end, committed transactions only
  std::array<StageWaitSummary, kNumStageWaits> waits;

  struct SlowTx {
    std::uint64_t key = 0;
    std::uint32_t tx = 0;
    double e2e_ms = 0;
    /// Per-wait breakdown; negative entries mean the wait was not observed.
    std::array<double, kNumStageWaits> wait_ms{-1, -1, -1, -1, -1};
  };
  std::vector<SlowTx> slowest;  ///< descending end-to-end latency

  /// One JSON object (no trailing newline) — the flight-record "latency"
  /// member schema (docs/OBSERVABILITY.md).
  std::string ToJson() const;
};

class TxLifecycleTracer {
 public:
  static TxLifecycleTracer& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Microseconds on the tracer clock (shared with PhaseTracer so lifecycle
  /// stamps and trace spans line up).
  static double NowUs();

  // ---- Ingress tier (pre-pipeline, keyed, thread-safe) ----

  /// Stamps `stage` (kSubmitted or kIncluded) for one keyed transaction.
  /// Creates the entry on first touch; silently drops when the ingress
  /// table is at capacity (counted in nezha_tx_lifecycle_dropped_total).
  void StampIngress(std::uint64_t key, TxStage stage);
  /// Batch form: one clock read for the whole span.
  void StampIngressBatch(std::span<const std::uint64_t> keys, TxStage stage);
  /// Forgets a keyed transaction that will never reach an epoch (dropped
  /// from the mempool without being committed).
  void DropIngress(std::uint64_t key);
  std::size_t IngressCount() const;

  // ---- Epoch tier (in-pipeline, dense, single-pipeline) ----

  /// Starts tracking one epoch batch: lifetime t gets keys[t], and any
  /// ingress stamps recorded under that key are claimed (moved) into the
  /// epoch table. Returns the slot id (0 when disabled) and binds the
  /// calling thread to it; opening beyond kMaxOpenEpochs discards the
  /// oldest unfinished epoch.
  std::uint64_t BeginEpoch(std::uint64_t epoch, std::string_view scheme,
                           std::span<const std::uint64_t> keys);

  /// Routes this thread's subsequent epoch-tier calls (stamps, FinishEpoch)
  /// to the slot BeginEpoch returned — the pipeline's commit thread binds to
  /// epoch N's slot while the prepare thread has already opened N+1's.
  /// Binding to a closed slot is harmless (falls back to newest open).
  void BindEpochForThread(std::uint64_t slot_id);
  void UnbindThread();

  bool EpochActive() const;
  std::size_t CurrentEpochSize() const;

  /// Stamps `stage` for every tracked transaction not marked aborted, with
  /// one clock read.
  void StampAll(TxStage stage);
  /// Stamps `stage` for the given TxIndex set, one clock read per call
  /// (out-of-range indices are ignored).
  void StampTxs(std::span<const std::uint32_t> txs, TxStage stage);
  void StampTx(std::uint32_t tx, TxStage stage);
  /// Marks `tx` aborted with a ConflictKind, stamping kAborted.
  void MarkAborted(std::uint32_t tx, std::uint8_t kind);
  /// Batch form: one clock read and one lock for the whole span (the
  /// scheduler hands over every abort of a schedule at once).
  void MarkAbortedBatch(
      std::span<const std::pair<std::uint32_t, std::uint8_t>> aborts);

  /// Ends the epoch: computes the latency decomposition (keeping the top_k
  /// slowest committed transactions), publishes the per-scheme
  /// nezha_tx_e2e_ms / nezha_tx_stage_wait_ms{stage} histograms and the
  /// committed/aborted counters, retains the lifetimes for
  /// LastEpochLifetimes(), and closes the slot (the thread-bound one when
  /// bound, else the newest open). Returns a default-constructed summary
  /// when no epoch is active.
  EpochLatencySummary FinishEpoch(std::size_t top_k = 4);

  /// The finished epoch's lifetimes / summary (for tests and reports).
  std::vector<TxLifetime> LastEpochLifetimes() const;
  EpochLatencySummary LastSummary() const;

  /// Drops all ingress and epoch state (tests).
  void Clear();

 private:
  TxLifecycleTracer() = default;

  struct IngressEntry {
    double submitted_us = TxLifetime::kUnstamped;
    double included_us = TxLifetime::kUnstamped;
  };

  static constexpr std::size_t kIngressStripes = 64;
  /// Total ingress capacity ~1M entries; beyond that new stamps are dropped
  /// (a mempool deeper than this has bigger problems than tracing).
  static constexpr std::size_t kMaxIngressPerStripe = 16384;

  struct IngressStripe {
    mutable Mutex mutex;
    std::unordered_map<std::uint64_t, IngressEntry> entries
        GUARDED_BY(mutex);
  };

  IngressStripe& StripeFor(std::uint64_t key) {
    // splitmix64 finalizer: LifecycleKeys are already mixed, but keys from
    // other producers may be sequential.
    std::uint64_t h = key;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return ingress_[h % kIngressStripes];
  }

  /// Claims (removes and returns) the ingress entry for `key`, if any.
  bool ClaimIngress(std::uint64_t key, IngressEntry* out);

  std::atomic<bool> enabled_{true};

  IngressStripe ingress_[kIngressStripes];
  /// Total entries across all stripes. Lets BeginEpoch skip the per-key
  /// claim lookups entirely when no producer ever stamped ingress (benches,
  /// unit tests, drivers without a mempool).
  std::atomic<std::size_t> ingress_count_{0};

  /// One concurrently-open epoch. Slot ids are monotone and never reused,
  /// so a stale thread binding can never alias a newer epoch.
  struct EpochSlot {
    std::uint64_t id = 0;
    std::uint64_t epoch = 0;
    std::string scheme;
    std::vector<TxLifetime> lifetimes;
  };
  /// Open-slot cap: a pipeline of depth d keeps at most d+1 epochs in
  /// flight; 4 covers the depths the pipeline supports.
  static constexpr std::size_t kMaxOpenEpochs = 4;

  /// The slot this thread's epoch-tier calls target: the thread-bound slot
  /// when bound and still open, else the newest open slot, else nullptr.
  EpochSlot* ResolveSlot() REQUIRES(epoch_mutex_);

  mutable Mutex epoch_mutex_;
  std::vector<EpochSlot> slots_ GUARDED_BY(epoch_mutex_);  ///< open order
  std::uint64_t next_slot_id_ GUARDED_BY(epoch_mutex_) = 1;
  std::vector<TxLifetime> last_lifetimes_ GUARDED_BY(epoch_mutex_);
  EpochLatencySummary last_summary_ GUARDED_BY(epoch_mutex_);
};

/// Shorthand for TxLifecycleTracer::Global().
inline TxLifecycleTracer& Lifecycle() { return TxLifecycleTracer::Global(); }

}  // namespace nezha::obs
