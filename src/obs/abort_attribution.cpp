#include "obs/abort_attribution.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"

namespace nezha::obs {

const char* ConflictKindName(ConflictKind kind) {
  switch (kind) {
    case ConflictKind::kReadWrite:
      return "read-write";
    case ConflictKind::kWriteWriteUnreorderable:
      return "write-write-unreorderable";
    case ConflictKind::kRankCycle:
      return "rank-cycle";
    case ConflictKind::kReverted:
      return "reverted";
  }
  return "?";
}

const char* ReorderFailureName(ReorderFailure failure) {
  switch (failure) {
    case ReorderFailure::kNotAttempted:
      return "not-attempted";
    case ReorderFailure::kUpperBoundHit:
      return "upper-bound";
  }
  return "?";
}

void SelectTopK(std::vector<AddressHeat>& heat, std::size_t k) {
  const auto hotter = [](const AddressHeat& a, const AddressHeat& b) {
    if (a.aborts != b.aborts) return a.aborts > b.aborts;
    const std::uint64_t pa = std::uint64_t{a.readers} + a.writers;
    const std::uint64_t pb = std::uint64_t{b.readers} + b.writers;
    if (pa != pb) return pa > pb;
    return a.address < b.address;
  };
  if (heat.size() > k) {
    std::partial_sort(heat.begin(), heat.begin() + static_cast<long>(k),
                      heat.end(), hotter);
    heat.resize(k);
  } else {
    std::sort(heat.begin(), heat.end(), hotter);
  }
}

AttributionRollup BuildRollup(const ScheduleAttribution& attribution,
                              std::size_t k) {
  AttributionRollup rollup;
  for (const AbortRecord& r : attribution.aborts) {
    ++rollup.by_kind[static_cast<std::size_t>(r.kind)];
  }
  rollup.total_aborts = attribution.aborts.size();
  rollup.reorder_attempts = attribution.reorder_attempts;
  rollup.reorder_commits = attribution.reorder_commits;
  rollup.hot_addresses = attribution.hot_addresses;
  SelectTopK(rollup.hot_addresses, k);
  return rollup;
}

void AttributionRollup::Merge(const AttributionRollup& other, std::size_t k) {
  for (std::size_t i = 0; i < kNumConflictKinds; ++i) {
    by_kind[i] += other.by_kind[i];
  }
  total_aborts += other.total_aborts;
  reorder_attempts += other.reorder_attempts;
  reorder_commits += other.reorder_commits;
  // Merge heat by address, then re-trim.
  std::unordered_map<std::uint64_t, AddressHeat> merged;
  merged.reserve(hot_addresses.size() + other.hot_addresses.size());
  const auto fold = [&](const AddressHeat& h) {
    AddressHeat& slot = merged[h.address];
    slot.address = h.address;
    slot.readers = std::max(slot.readers, h.readers);
    slot.writers = std::max(slot.writers, h.writers);
    slot.aborts += h.aborts;
  };
  for (const AddressHeat& h : hot_addresses) fold(h);
  for (const AddressHeat& h : other.hot_addresses) fold(h);
  hot_addresses.clear();
  hot_addresses.reserve(merged.size());
  for (const auto& [addr, h] : merged) hot_addresses.push_back(h);
  SelectTopK(hot_addresses, k);
}

void PublishAttribution(std::string_view scheduler,
                        const AttributionRollup& rollup) {
  if (!MetricsEnabled()) return;
  auto& registry = Registry();
  const std::string name(scheduler);
  for (std::size_t i = 0; i < kNumConflictKinds; ++i) {
    if (rollup.by_kind[i] == 0) continue;
    registry
        .GetCounter("nezha_abort_cause_total",
                    {{"scheduler", name},
                     {"cause",
                      ConflictKindName(static_cast<ConflictKind>(i))}})
        ->Inc(rollup.by_kind[i]);
  }
  const Labels by_scheduler = {{"scheduler", name}};
  if (rollup.reorder_attempts > 0) {
    registry.GetCounter("nezha_reorder_attempts_total", by_scheduler)
        ->Inc(rollup.reorder_attempts);
  }
  if (rollup.reorder_commits > 0) {
    registry.GetCounter("nezha_reorder_commits_total", by_scheduler)
        ->Inc(rollup.reorder_commits);
  }
  for (std::size_t i = 0; i < rollup.hot_addresses.size(); ++i) {
    const AddressHeat& h = rollup.hot_addresses[i];
    const Labels labels = {{"scheduler", name},
                           {"rank", std::to_string(i)}};
    registry.GetGauge("nezha_hot_address_aborts", labels)
        ->Set(static_cast<std::int64_t>(h.aborts));
    registry.GetGauge("nezha_hot_address_id", labels)
        ->Set(static_cast<std::int64_t>(h.address));
  }
}

}  // namespace nezha::obs
