// Phase-span tracer: RAII spans with thread id and nesting depth, collected
// into a bounded ring buffer and exportable as Chrome trace_event JSON
// (load the file in chrome://tracing or https://ui.perfetto.dev).
//
// Tracing is OFF by default — a disabled TraceSpan costs one relaxed load.
// Spans record on destruction as complete ("ph":"X") events; nesting falls
// out of the per-thread begin/end times, so an "epoch" span enclosing
// "validate".."commit" spans renders as a flame graph row per thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace nezha::obs {

struct TraceEvent {
  std::string name;
  std::uint32_t tid = 0;   ///< dense per-process thread number (1-based)
  std::uint32_t depth = 0; ///< span nesting depth on that thread (0 = root)
  double ts_us = 0;        ///< start, microseconds since tracer epoch
  double dur_us = 0;
  /// Counter sample ("ph":"C" in the Chrome export) instead of a span:
  /// `value` at instant ts_us; dur_us/depth unused. Counter tracks render
  /// as stacked area charts above the flame rows (e.g. pool_busy_workers).
  bool counter = false;
  double value = 0;
};

/// Dense id of the calling thread (1, 2, 3, ... in first-use order).
std::uint32_t CurrentThreadId();

/// Names the calling thread for trace exports: chrome://tracing shows the
/// name instead of a bare tid (emitted as "ph":"M" thread_name metadata).
/// Recorded even while tracing is disabled — the map is bounded by the
/// process's thread count, and pool workers name themselves at startup,
/// typically before anyone enables the tracer.
void SetThreadName(std::string_view name);

class PhaseTracer {
 public:
  static PhaseTracer& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Ring capacity in events (default 65536). Shrinking drops the oldest.
  void SetCapacity(std::size_t capacity);

  void Record(TraceEvent event);

  /// Records one counter sample (a "ph":"C" point on track `name` at
  /// `ts_us`). Same ring and enable gate as spans.
  void RecordCounter(std::string_view name, double ts_us, double value);

  /// Copies out the buffered events in start-time order.
  std::vector<TraceEvent> Events() const;
  std::size_t EventCount() const;
  /// Total events recorded, including ones the ring has since overwritten.
  std::uint64_t TotalRecorded() const;
  void Clear();

  /// Thread names registered via SetThreadName, as (tid, name) pairs sorted
  /// by tid.
  std::vector<std::pair<std::uint32_t, std::string>> ThreadNames() const;

  /// Chrome trace_event JSON (the "traceEvents" array form), led by
  /// process_name / thread_name metadata ("ph":"M") events so pipeline
  /// stages render under labeled rows.
  std::string ExportChromeTrace() const;
  /// Writes ExportChromeTrace() to `path`; false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

  /// Microseconds since the tracer epoch (process start), the spans' clock.
  static double NowUs();

 private:
  PhaseTracer() = default;

  std::atomic<bool> enabled_{false};

  mutable Mutex mutex_;
  std::vector<TraceEvent> ring_ GUARDED_BY(mutex_);
  std::size_t capacity_ GUARDED_BY(mutex_) = 65536;
  /// Ring write cursor.
  std::size_t next_ GUARDED_BY(mutex_) = 0;
  /// Lifetime event count.
  std::uint64_t recorded_ GUARDED_BY(mutex_) = 0;
  /// tid -> display name (SetThreadName).
  std::unordered_map<std::uint32_t, std::string> thread_names_
      GUARDED_BY(mutex_);

  friend void SetThreadName(std::string_view name);
};

/// RAII span. Construction stamps the start; destruction records the event
/// (when the tracer is enabled at destruction time).
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string name_;
  double start_us_ = 0;
  std::uint32_t depth_ = 0;
  bool armed_ = false;
};

}  // namespace nezha::obs
