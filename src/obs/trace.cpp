#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>

namespace nezha::obs {
namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point TracerEpoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

std::atomic<std::uint32_t> g_next_thread_id{1};

thread_local std::uint32_t t_thread_id = 0;
thread_local std::uint32_t t_span_depth = 0;

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::uint32_t CurrentThreadId() {
  if (t_thread_id == 0) {
    t_thread_id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  }
  return t_thread_id;
}

void SetThreadName(std::string_view name) {
  const std::uint32_t tid = CurrentThreadId();
  PhaseTracer& tracer = PhaseTracer::Global();
  MutexLock lock(tracer.mutex_);
  tracer.thread_names_[tid] = std::string(name);
}

PhaseTracer& PhaseTracer::Global() {
  static PhaseTracer* tracer = new PhaseTracer();  // never freed
  return *tracer;
}

double PhaseTracer::NowUs() {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   TracerEpoch())
      .count();
}

void PhaseTracer::SetCapacity(std::size_t capacity) {
  MutexLock lock(mutex_);
  capacity_ = std::max<std::size_t>(1, capacity);
  if (ring_.size() > capacity_) {
    // Keep the newest events: rotate so the ring is in insertion order,
    // then drop from the front.
    std::rotate(ring_.begin(), ring_.begin() + static_cast<long>(next_),
                ring_.end());
    ring_.erase(ring_.begin(),
                ring_.end() - static_cast<long>(capacity_));
    next_ = 0;
  }
}

void PhaseTracer::RecordCounter(std::string_view name, double ts_us,
                                double value) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::string(name);
  event.tid = CurrentThreadId();
  event.ts_us = ts_us;
  event.counter = true;
  event.value = value;
  Record(std::move(event));
}

void PhaseTracer::Record(TraceEvent event) {
  MutexLock lock(mutex_);
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  ring_[next_] = std::move(event);
  next_ = (next_ + 1) % capacity_;
}

std::vector<TraceEvent> PhaseTracer::Events() const {
  std::vector<TraceEvent> out;
  {
    MutexLock lock(mutex_);
    out = ring_;
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  return out;
}

std::size_t PhaseTracer::EventCount() const {
  MutexLock lock(mutex_);
  return ring_.size();
}

std::uint64_t PhaseTracer::TotalRecorded() const {
  MutexLock lock(mutex_);
  return recorded_;
}

void PhaseTracer::Clear() {
  MutexLock lock(mutex_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

std::vector<std::pair<std::uint32_t, std::string>> PhaseTracer::ThreadNames()
    const {
  std::vector<std::pair<std::uint32_t, std::string>> names;
  {
    MutexLock lock(mutex_);
    names.assign(thread_names_.begin(), thread_names_.end());
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::string PhaseTracer::ExportChromeTrace() const {
  const std::vector<TraceEvent> events = Events();
  std::vector<std::string> entries;
  entries.reserve(events.size() + 8);
  // Metadata first: name the process and every registered thread so the
  // viewer shows labeled rows instead of bare tids.
  entries.push_back(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1"
      ",\"args\":{\"name\":\"nezha\"}}");
  for (const auto& [tid, name] : ThreadNames()) {
    std::ostringstream meta;
    meta << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
         << ",\"args\":{\"name\":\"" << JsonEscape(name) << "\"}}";
    entries.push_back(meta.str());
  }
  for (const TraceEvent& e : events) {
    std::ostringstream line;
    if (e.counter) {
      // Counter tracks key the value by the track name so the viewer draws
      // one series per name.
      line << "{\"name\":\"" << JsonEscape(e.name) << "\",\"ph\":\"C\""
           << ",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":" << e.ts_us
           << ",\"args\":{\"" << JsonEscape(e.name) << "\":" << e.value
           << "}}";
    } else {
      line << "{\"name\":\"" << JsonEscape(e.name) << "\",\"ph\":\"X\""
           << ",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":" << e.ts_us
           << ",\"dur\":" << e.dur_us << ",\"args\":{\"depth\":" << e.depth
           << "}}";
    }
    entries.push_back(line.str());
  }
  std::ostringstream out;
  out << "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << entries[i];
    if (i + 1 < entries.size()) out << ",";
    out << "\n";
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
  return out.str();
}

bool PhaseTracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file.is_open()) return false;
  file << ExportChromeTrace();
  return file.good();
}

TraceSpan::TraceSpan(std::string_view name) {
  PhaseTracer& tracer = PhaseTracer::Global();
  if (!tracer.enabled()) return;
  armed_ = true;
  name_ = std::string(name);
  depth_ = t_span_depth++;
  start_us_ = PhaseTracer::NowUs();
}

TraceSpan::~TraceSpan() {
  if (!armed_) return;
  --t_span_depth;
  PhaseTracer& tracer = PhaseTracer::Global();
  if (!tracer.enabled()) return;
  TraceEvent event;
  event.name = std::move(name_);
  event.tid = CurrentThreadId();
  event.depth = depth_;
  event.ts_us = start_us_;
  event.dur_us = PhaseTracer::NowUs() - start_us_;
  tracer.Record(std::move(event));
}

}  // namespace nezha::obs
