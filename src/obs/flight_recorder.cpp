#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/metrics.h"

namespace nezha::obs {
namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatMs(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Metric label values must stay low-cardinality; fold anything exotic in a
/// reason string ("fault-crash:node/commit/after_journal") to [a-z0-9-_:/.].
std::string SanitizeReason(std::string_view reason) {
  std::string out;
  out.reserve(reason.size());
  for (char c : reason) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == ':' || c == '/' || c == '.';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string EpochFlightRecord::ToJson() const {
  std::ostringstream out;
  out << "{\"epoch\":" << epoch << ",\"scheme\":\"" << JsonEscape(scheme)
      << "\",\"blocks\":" << blocks << ",\"txs\":" << txs
      << ",\"committed\":" << committed << ",\"aborted\":" << aborted
      << ",\"phases_ms\":{\"validate\":" << FormatMs(validate_ms)
      << ",\"execute\":" << FormatMs(execute_ms)
      << ",\"cc\":" << FormatMs(cc_ms)
      << ",\"commit\":" << FormatMs(commit_ms) << "}"
      << ",\"acg\":{\"vertices\":" << acg_vertices
      << ",\"edges\":" << acg_edges << "}"
      << ",\"parallel\":{\"acg_shards\":" << parallel_acg_shards
      << ",\"sort_clusters\":" << parallel_sort_clusters
      << ",\"exec_groups\":" << parallel_exec_groups
      << ",\"max_group\":" << parallel_max_group << "}";
  const RankDecisionStats& rank = attribution.rank;
  out << ",\"rank\":{\"zero_indegree\":" << rank.zero_indegree_pops
      << ",\"cycle_breaks\":" << rank.cycle_breaks
      << ",\"tiebreak_min_indegree\":" << rank.tiebreak_min_indegree
      << ",\"tiebreak_out_degree\":" << rank.tiebreak_out_degree
      << ",\"tiebreak_subscript\":" << rank.tiebreak_subscript << "}";
  out << ",\"reorders\":{\"attempted\":" << attribution.reorder_attempts
      << ",\"committed\":" << attribution.reorder_commits << "}";
  out << ",\"hot_addresses\":[";
  for (std::size_t i = 0; i < attribution.hot_addresses.size(); ++i) {
    const AddressHeat& h = attribution.hot_addresses[i];
    if (i > 0) out << ",";
    out << "{\"address\":" << h.address << ",\"readers\":" << h.readers
        << ",\"writers\":" << h.writers << ",\"aborts\":" << h.aborts << "}";
  }
  out << "],\"aborts\":[";
  for (std::size_t i = 0; i < attribution.aborts.size(); ++i) {
    const AbortRecord& a = attribution.aborts[i];
    if (i > 0) out << ",";
    out << "{\"tx\":" << a.tx << ",\"address\":" << a.address
        << ",\"kind\":\"" << ConflictKindName(a.kind)
        << "\",\"seq\":" << a.seq_at_decision << ",\"reorder_attempted\":"
        << (a.reorder_attempted ? "true" : "false")
        << ",\"reorder_failure\":\"" << ReorderFailureName(a.reorder_failure)
        << "\"}";
  }
  out << "]";
  if (latency.tracked > 0) {
    out << ",\"latency\":" << latency.ToJson();
  }
  if (profile.span_ms > 0) {
    out << ",\"profile\":" << profile.ToJson();
  }
  out << "}";
  return out.str();
}

std::string FlightEvent::ToJson() const {
  return "{\"event\":{\"seq\":" + std::to_string(seq) + ",\"component\":\"" +
         JsonEscape(component) + "\",\"kind\":\"" + JsonEscape(kind) +
         "\",\"detail\":\"" + JsonEscape(detail) + "\"}}";
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // never freed
  return *recorder;
}

void FlightRecorder::SetCapacity(std::size_t capacity) {
  const std::size_t per_stripe = std::max<std::size_t>(1, capacity / kStripes);
  for (Stripe& stripe : stripes_) {
    MutexLock lock(stripe.mutex);
    // Resizing invalidates slot positions; keep it simple and drop the
    // stripe's history (SetCapacity is a setup-time call).
    stripe.capacity = per_stripe;
    stripe.ring.clear();
    stripe.seqs.clear();
    stripe.used.clear();
  }
}

void FlightRecorder::Record(EpochFlightRecord record) {
  if (!enabled()) return;
  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  Stripe& stripe = stripes_[seq % kStripes];
  MutexLock lock(stripe.mutex);
  if (stripe.ring.size() != stripe.capacity) {
    stripe.ring.resize(stripe.capacity);
    stripe.seqs.resize(stripe.capacity, 0);
    stripe.used.assign(stripe.capacity, false);
  }
  const std::size_t slot = (seq / kStripes) % stripe.capacity;
  stripe.ring[slot] = std::move(record);
  stripe.seqs[slot] = seq;
  stripe.used[slot] = true;
}

void FlightRecorder::RecordEvent(std::string component, std::string kind,
                                 std::string detail) {
  if (!enabled()) return;
  MutexLock lock(event_mutex_);
  const std::uint64_t seq = next_event_seq_++;
  FlightEvent event{seq, std::move(component), std::move(kind),
                    std::move(detail)};
  if (events_.size() < kEventCapacity) {
    events_.push_back(std::move(event));
  } else {
    events_[seq % kEventCapacity] = std::move(event);
  }
}

std::vector<FlightEvent> FlightRecorder::Events() const {
  MutexLock lock(event_mutex_);
  std::vector<FlightEvent> out = events_;
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::uint64_t FlightRecorder::TotalEvents() const {
  MutexLock lock(event_mutex_);
  return next_event_seq_;
}

std::vector<EpochFlightRecord> FlightRecorder::Records() const {
  std::vector<std::pair<std::uint64_t, EpochFlightRecord>> tagged;
  for (const Stripe& stripe : stripes_) {
    MutexLock lock(stripe.mutex);
    for (std::size_t i = 0; i < stripe.ring.size(); ++i) {
      if (!stripe.used[i]) continue;
      tagged.emplace_back(stripe.seqs[i], stripe.ring[i]);
    }
  }
  std::sort(tagged.begin(), tagged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<EpochFlightRecord> records;
  records.reserve(tagged.size());
  for (auto& [seq, record] : tagged) records.push_back(std::move(record));
  return records;
}

std::size_t FlightRecorder::RecordCount() const {
  std::size_t count = 0;
  for (const Stripe& stripe : stripes_) {
    MutexLock lock(stripe.mutex);
    for (std::size_t i = 0; i < stripe.ring.size(); ++i) {
      count += stripe.used[i] ? 1 : 0;
    }
  }
  return count;
}

std::uint64_t FlightRecorder::TotalRecorded() const {
  return next_seq_.load(std::memory_order_relaxed);
}

void FlightRecorder::Clear() {
  for (Stripe& stripe : stripes_) {
    MutexLock lock(stripe.mutex);
    stripe.ring.clear();
    stripe.seqs.clear();
    stripe.used.clear();
  }
  {
    MutexLock lock(event_mutex_);
    events_.clear();
    next_event_seq_ = 0;
  }
  next_seq_.store(0, std::memory_order_relaxed);
  current_epoch_.store(0, std::memory_order_relaxed);
}

std::string FlightRecorder::ExportJsonl() const {
  std::string out;
  for (const EpochFlightRecord& record : Records()) {
    out += record.ToJson();
    out += "\n";
  }
  return out;
}

bool FlightRecorder::WriteJsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string jsonl = ExportJsonl();
  const std::size_t written = std::fwrite(jsonl.data(), 1, jsonl.size(), f);
  const bool ok = written == jsonl.size() && std::fclose(f) == 0;
  if (!ok && written != jsonl.size()) std::fclose(f);
  return ok;
}

void FlightRecorder::SetDumpDirectory(std::optional<std::string> dir) {
  MutexLock lock(dump_mutex_);
  dump_dir_ = std::move(dir);
}

std::string FlightRecorder::DumpPostMortem(std::string_view reason) {
  const std::string sanitized = SanitizeReason(reason);
  if (MetricsEnabled()) {
    Registry()
        .GetCounter("nezha_flight_dumps_total", {{"reason", sanitized}})
        ->Inc();
  }
  std::string dir;
  {
    MutexLock lock(dump_mutex_);
    if (dump_dir_.has_value()) {
      dir = *dump_dir_;
    } else if (const char* env = std::getenv("NEZHA_FLIGHT_DUMP_DIR");
               env != nullptr && env[0] != '\0') {
      dir = env;
    } else {
      return "";  // dumps disabled; the counter above still recorded it
    }
  }
  std::string file_reason = sanitized;
  std::replace(file_reason.begin(), file_reason.end(), '/', '-');
  std::replace(file_reason.begin(), file_reason.end(), ':', '-');
  const std::uint64_t n =
      dump_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::string path =
      dir + "/nezha_flight_" + file_reason + "_" + std::to_string(n) +
      ".jsonl";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return "";
  std::string payload = ExportJsonl();
  // Incident events ride along after the epoch records; a clean run (no
  // events recorded) dumps exactly records + trailer, as before.
  for (const FlightEvent& event : Events()) {
    payload += event.ToJson();
    payload += "\n";
  }
  payload += "{\"postmortem\":\"" + JsonEscape(reason) +
             "\",\"epoch\":" + std::to_string(CurrentEpoch()) +
             ",\"records\":" + std::to_string(RecordCount()) + "}\n";
  const std::size_t written = std::fwrite(payload.data(), 1, payload.size(), f);
  if (written != payload.size()) {
    std::fclose(f);
    return "";
  }
  if (std::fclose(f) != 0) return "";
  return path;
}

}  // namespace nezha::obs
