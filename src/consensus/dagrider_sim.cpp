#include "consensus/dagrider_sim.h"

#include <cstdio>
#include <string>

#include "analysis/det_checkpoint.h"
#include "obs/metrics.h"

namespace nezha {

namespace {

/// Marker transaction a Byzantine node stuffs into conflicting/invalid
/// bodies so they differ from (and hash differently than) the honest one.
Transaction ByzMarkerTx(std::uint64_t counter) {
  Transaction tx;
  tx.nonce = 0xB12A'0000'0000'0000ull + counter;
  tx.payload.contract = 0xB12A;
  tx.payload.op = 0;
  return tx;
}

}  // namespace

DagRiderSimulation::DagRiderSimulation(const DagRiderSimConfig& config,
                                       TxSource tx_source)
    : config_(config),
      tx_source_(std::move(tx_source)),
      rng_(config.seed),
      net_(config.net_plan, "dagrider") {
  nodes_.reserve(config.num_nodes);
  for (NodeId id = 0; id < config.num_nodes; ++id) {
    nodes_.push_back(std::make_unique<DagRiderView>(id, config.num_nodes));
  }
  emit_armed_.assign(config.num_nodes, false);
}

void DagRiderSimulation::ArmEmit(NodeId node) {
  if (emit_armed_[node]) return;
  if (queue_.Now() + config_.emit_delay_ms > config_.duration_ms) return;
  emit_armed_[node] = true;
  queue_.ScheduleAfter(config_.emit_delay_ms, [this, node] { Emit(node); });
}

void DagRiderSimulation::Broadcast(const DagVertex& vertex, NodeId from) {
  for (NodeId peer = 0; peer < config_.num_nodes; ++peer) {
    if (peer == from) continue;
    const double delay =
        config_.base_latency_ms + rng_.NextDouble() * config_.jitter_ms;
    for (const double at : net_.Deliveries(from, peer, fault::MsgKind::kVertex,
                                           queue_.Now(), delay)) {
      queue_.ScheduleAt(at, [this, vertex, peer] {
        (void)nodes_[peer]->OnVertex(vertex);
        ArmEmit(peer);
      });
    }
  }
}

void DagRiderSimulation::BroadcastEquivocating(const DagVertex& original,
                                               const DagVertex& twin,
                                               NodeId from) {
  for (NodeId peer = 0; peer < config_.num_nodes; ++peer) {
    if (peer == from) continue;
    const double delay =
        config_.base_latency_ms + rng_.NextDouble() * config_.jitter_ms;
    // One delay draw for the pair: the original is scheduled first at each
    // delivery time, so the FIFO tie-break admits it and rejects the twin
    // on every replica alike.
    for (const double at : net_.Deliveries(from, peer, fault::MsgKind::kVertex,
                                           queue_.Now(), delay)) {
      queue_.ScheduleAt(at, [this, original, peer] {
        (void)nodes_[peer]->OnVertex(original);
        ArmEmit(peer);
      });
    }
    for (const double at : net_.Deliveries(from, peer, fault::MsgKind::kVertex,
                                           queue_.Now(), delay)) {
      queue_.ScheduleAt(at, [this, twin, peer] {
        (void)nodes_[peer]->OnVertex(twin);
      });
    }
  }
}

DagVertex DagRiderSimulation::MakeInvalidVariant(const DagVertex& vertex) {
  DagVertex invalid = vertex;
  std::uint64_t flavour = byz_counter_ % 4;
  if (flavour == 3 && invalid.parents.size() < 2) flavour = 0;
  switch (flavour) {
    case 0:
      // Tampered tx root: hash covers the lie, the body does not.
      invalid.tx_root.bytes[0] ^= 0xFF;
      invalid.Seal();
      break;
    case 1:
      // Duplicate transaction, root honestly recomputed over the bad body.
      invalid.txs.push_back(ByzMarkerTx(byz_counter_));
      invalid.txs.push_back(invalid.txs.back());
      invalid.tx_root = ComputeTxMerkleRoot(invalid.txs);
      invalid.Seal();
      break;
    case 2:
      // Forged hash: content untouched, hash corrupted after sealing.
      invalid.Seal();
      invalid.hash.bytes[0] ^= 0xFF;
      break;
    default:
      // Two strong edges to one source (duplicate parent).
      invalid.parents[1] = invalid.parents[0];
      invalid.Seal();
      break;
  }
  return invalid;
}

void DagRiderSimulation::Emit(NodeId node) {
  emit_armed_[node] = false;
  if (!nodes_[node]->CanEmit()) return;  // re-armed on the next delivery

  std::vector<Transaction> txs;
  if (tx_source_) txs = tx_source_(node);
  DagVertex vertex = nodes_[node]->PrepareVertex(std::move(txs));
  vertex.Seal();
  ++stats_.vertices_emitted;
  obs::Registry()
      .GetCounter("nezha_consensus_blocks_total", {{"sim", "dagrider"}})
      ->Inc();

  // The node always adopts its own honest vertex (its private state stays
  // coherent); what it BROADCASTS depends on its role.
  (void)nodes_[node]->OnVertex(vertex);
  ArmEmit(node);  // next round, once the quorum clock allows

  const fault::ByzantineConfig& byz = config_.byzantine;
  if (byz.Enabled() && byz.IsByzantine(node)) {
    switch (byz.behavior) {
      case fault::ByzBehavior::kWithhold:
        if (byz.release_ms <= 0 || queue_.Now() < byz.release_ms) {
          ++stats_.byz_withheld;
          withheld_.push_back(std::move(vertex));
          if (byz.release_ms > 0 && !release_scheduled_) {
            release_scheduled_ = true;
            queue_.ScheduleAt(byz.release_ms, [this] { ReleaseWithheld(); });
          }
          return;
        }
        break;  // past the release point: behave
      case fault::ByzBehavior::kEquivocate: {
        DagVertex twin = vertex;
        twin.txs.push_back(ByzMarkerTx(byz_counter_++));
        twin.tx_root = ComputeTxMerkleRoot(twin.txs);
        twin.Seal();
        ++stats_.byz_equivocations;
        BroadcastEquivocating(vertex, twin, node);
        return;
      }
      case fault::ByzBehavior::kInvalidBlock: {
        DagVertex invalid = MakeInvalidVariant(vertex);
        ++byz_counter_;
        ++stats_.byz_invalid;
        Broadcast(invalid, node);
        return;  // the honest vertex stays private (gossip may share it)
      }
      case fault::ByzBehavior::kNone:
        break;
    }
  }

  Broadcast(vertex, node);
}

void DagRiderSimulation::GossipPull(NodeId to, NodeId from) {
  if (net_.Active() && net_.Partitioned(from, to, queue_.Now())) return;
  for (const DagVertex* vertex : nodes_[from]->AllVertices()) {
    if (nodes_[to]->Knows(vertex->hash)) continue;
    ++stats_.gossip_transfers;
    (void)nodes_[to]->OnVertex(*vertex);
  }
  ArmEmit(to);
}

void DagRiderSimulation::ScheduleNextGossipEvent() {
  if (config_.gossip_interval_ms <= 0 || config_.num_nodes < 2) return;
  const double when = queue_.Now() + config_.gossip_interval_ms;
  if (when > config_.duration_ms) return;
  queue_.ScheduleAt(when, [this] {
    // Deterministic rotating ring: over n-1 ticks every ordered pair pulls.
    ++gossip_tick_;
    const std::uint32_t n = config_.num_nodes;
    const auto offset =
        static_cast<std::uint32_t>(1 + gossip_tick_ % (n - 1));
    for (NodeId node = 0; node < n; ++node) {
      GossipPull(node, (node + offset) % n);
    }
    ScheduleNextGossipEvent();
  });
}

void DagRiderSimulation::ReleaseWithheld() {
  std::vector<DagVertex> pending = std::move(withheld_);
  withheld_.clear();
  for (const DagVertex& vertex : pending) {
    Broadcast(vertex, vertex.source);
  }
}

void DagRiderSimulation::Run() {
  for (NodeId node = 0; node < config_.num_nodes; ++node) {
    ArmEmit(node);
  }
  ScheduleNextGossipEvent();
  queue_.RunUntil(config_.duration_ms);
  queue_.RunToCompletion();

  // Settlement: once traffic generation stops, the network "heals" — the
  // emulator passes everything through, withheld vertices come out, and a
  // lossless anti-entropy ring sweep converges every view. Skipped
  // entirely for the honest configuration (byte-identical traces).
  if (!config_.net_plan.Empty() || config_.byzantine.Enabled()) {
    net_.Quiesce();
    ReleaseWithheld();
    queue_.RunToCompletion();
    if (config_.num_nodes > 1) {
      for (std::uint32_t round = 0; round < config_.num_nodes + 1; ++round) {
        for (NodeId node = 0; node < config_.num_nodes; ++node) {
          GossipPull(node, (node + 1) % config_.num_nodes);
        }
        queue_.RunToCompletion();
      }
    }
  }

  stats_.max_round = nodes_[0]->NextEmitRound();
  stats_.committed_vertices = nodes_[0]->CommittedSequence().size();
  stats_.committed_batches = nodes_[0]->NumBatches();

  // kConsensus determinism checkpoint: node 0's committed vertex sequence —
  // the total order the execution pipeline consumes. Same seed + config must
  // digest identically run to run.
  if (analysis::DetCheckpointRecorder& det =
          analysis::DetCheckpointRecorder::Global();
      det.enabled()) {
    det.BeginEpoch(0, "dagrider-sim");
    std::string canonical;
    const auto& sequence = nodes_[0]->CommittedSequence();
    canonical.reserve(48 + sequence.size() * 68);
    char line[96];
    std::snprintf(line, sizeof(line),
                  "consensus sim=dagrider vertices=%zu batches=%zu\n",
                  sequence.size(), stats_.committed_batches);
    canonical += line;
    for (std::size_t i = 0; i < sequence.size(); ++i) {
      std::snprintf(line, sizeof(line), "c %zu ", i);
      canonical += line;
      canonical += sequence[i]->hash.ToHex();
      canonical += '\n';
    }
    det.Record(analysis::DetStage::kConsensus, canonical);
  }

  auto& registry = obs::Registry();
  const obs::Labels sim_label = {{"sim", "dagrider"}};
  registry.GetGauge("nezha_consensus_confirmed_blocks", sim_label)
      ->Set(static_cast<std::int64_t>(stats_.committed_vertices));
  registry.GetGauge("nezha_consensus_confirmed_epochs", sim_label)
      ->Set(static_cast<std::int64_t>(stats_.committed_batches));
  if (stats_.gossip_transfers > 0) {
    registry.GetCounter("nezha_consensus_gossip_transfers_total", sim_label)
        ->Inc(stats_.gossip_transfers);
  }
  if (stats_.committed_batches > 0) {
    // Wave-anchored batches are DagRider's epoch analogue.
    registry
        .GetHistogram("nezha_consensus_epoch_blocks", sim_label,
                      obs::DefaultSizeBounds())
        ->Observe(static_cast<double>(stats_.committed_vertices) /
                  static_cast<double>(stats_.committed_batches));
  }
}

}  // namespace nezha
