#include "consensus/dagrider_sim.h"

#include "obs/metrics.h"

namespace nezha {

DagRiderSimulation::DagRiderSimulation(const DagRiderSimConfig& config,
                                       TxSource tx_source)
    : config_(config), tx_source_(std::move(tx_source)), rng_(config.seed) {
  nodes_.reserve(config.num_nodes);
  for (NodeId id = 0; id < config.num_nodes; ++id) {
    nodes_.push_back(std::make_unique<DagRiderView>(id, config.num_nodes));
  }
  emit_armed_.assign(config.num_nodes, false);
}

void DagRiderSimulation::ArmEmit(NodeId node) {
  if (emit_armed_[node]) return;
  if (queue_.Now() + config_.emit_delay_ms > config_.duration_ms) return;
  emit_armed_[node] = true;
  queue_.ScheduleAfter(config_.emit_delay_ms, [this, node] { Emit(node); });
}

void DagRiderSimulation::Emit(NodeId node) {
  emit_armed_[node] = false;
  if (!nodes_[node]->CanEmit()) return;  // re-armed on the next delivery

  std::vector<Transaction> txs;
  if (tx_source_) txs = tx_source_(node);
  DagVertex vertex = nodes_[node]->PrepareVertex(std::move(txs));
  vertex.Seal();
  ++stats_.vertices_emitted;
  obs::Registry()
      .GetCounter("nezha_consensus_blocks_total", {{"sim", "dagrider"}})
      ->Inc();

  (void)nodes_[node]->OnVertex(vertex);
  ArmEmit(node);  // next round, once the quorum clock allows
  for (NodeId peer = 0; peer < config_.num_nodes; ++peer) {
    if (peer == node) continue;
    const double delay =
        config_.base_latency_ms + rng_.NextDouble() * config_.jitter_ms;
    queue_.ScheduleAfter(delay, [this, vertex, peer] {
      (void)nodes_[peer]->OnVertex(vertex);
      ArmEmit(peer);
    });
  }
}

void DagRiderSimulation::Run() {
  for (NodeId node = 0; node < config_.num_nodes; ++node) {
    ArmEmit(node);
  }
  queue_.RunUntil(config_.duration_ms);
  queue_.RunToCompletion();

  stats_.max_round = nodes_[0]->NextEmitRound();
  stats_.committed_vertices = nodes_[0]->CommittedSequence().size();
  stats_.committed_batches = nodes_[0]->NumBatches();

  auto& registry = obs::Registry();
  const obs::Labels sim_label = {{"sim", "dagrider"}};
  registry.GetGauge("nezha_consensus_confirmed_blocks", sim_label)
      ->Set(static_cast<std::int64_t>(stats_.committed_vertices));
  registry.GetGauge("nezha_consensus_confirmed_epochs", sim_label)
      ->Set(static_cast<std::int64_t>(stats_.committed_batches));
  if (stats_.committed_batches > 0) {
    // Wave-anchored batches are DagRider's epoch analogue.
    registry
        .GetHistogram("nezha_consensus_epoch_blocks", sim_label,
                      obs::DefaultSizeBounds())
        ->Observe(static_cast<double>(stats_.committed_vertices) /
                  static_cast<double>(stats_.committed_batches));
  }
}

}  // namespace nezha
