#include "consensus/ohie_types.h"

#include "common/bytes.h"

namespace nezha {

std::string OhieBlock::HashPreimage() const {
  std::string out;
  PutVarint64(out, miner);
  PutVarint64(out, mine_counter);
  PutVarint64(out, parent_tips.size());
  for (const Hash256& tip : parent_tips) {
    out.append(reinterpret_cast<const char*>(tip.bytes.data()), 32);
  }
  out.append(reinterpret_cast<const char*>(tx_root.bytes.data()), 32);
  return out;
}

void OhieBlock::Seal(ChainId num_chains) {
  hash = Sha256::Digest(HashPreimage());
  // The chain is determined by the hash — the miner cannot choose it.
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value = (value << 8) | hash.bytes[static_cast<std::size_t>(i)];
  }
  chain = static_cast<ChainId>(value % num_chains);
}

std::string OhieBlock::Serialize() const {
  std::string out = HashPreimage();
  PutVarint64(out, txs.size());
  for (const Transaction& tx : txs) {
    const std::string tx_bytes = tx.Serialize();
    PutVarint64(out, tx_bytes.size());
    out += tx_bytes;
  }
  return out;
}

Result<OhieBlock> OhieBlock::Deserialize(std::string_view data,
                                         ChainId num_chains) {
  OhieBlock block;
  std::size_t offset = 0;
  std::uint64_t miner = 0, num_tips = 0;
  if (!GetVarint64(data, &offset, &miner) ||
      !GetVarint64(data, &offset, &block.mine_counter) ||
      !GetVarint64(data, &offset, &num_tips)) {
    return Status::Corruption("truncated OHIE block header");
  }
  block.miner = static_cast<NodeId>(miner);
  block.parent_tips.resize(num_tips);
  for (std::uint64_t i = 0; i < num_tips; ++i) {
    if (offset + 32 > data.size()) {
      return Status::Corruption("truncated OHIE parent tips");
    }
    for (int b = 0; b < 32; ++b) {
      block.parent_tips[i].bytes[static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(data[offset + static_cast<std::size_t>(b)]);
    }
    offset += 32;
  }
  if (offset + 32 > data.size()) {
    return Status::Corruption("truncated OHIE tx root");
  }
  for (int b = 0; b < 32; ++b) {
    block.tx_root.bytes[static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>(data[offset + static_cast<std::size_t>(b)]);
  }
  offset += 32;

  std::uint64_t num_txs = 0;
  if (!GetVarint64(data, &offset, &num_txs)) {
    return Status::Corruption("truncated OHIE tx count");
  }
  block.txs.reserve(num_txs);
  for (std::uint64_t i = 0; i < num_txs; ++i) {
    std::uint64_t tx_len = 0;
    if (!GetVarint64(data, &offset, &tx_len) ||
        offset + tx_len > data.size()) {
      return Status::Corruption("truncated OHIE tx");
    }
    auto tx = Transaction::Deserialize(data.substr(offset, tx_len));
    if (!tx.ok()) return tx.status();
    block.txs.push_back(std::move(tx.value()));
    offset += tx_len;
  }
  if (offset != data.size()) {
    return Status::Corruption("trailing bytes after OHIE block");
  }
  block.Seal(num_chains);  // recompute hash + chain; never trust the wire
  return block;
}

OhieBlock MakeOhieGenesis(ChainId chain) {
  OhieBlock genesis;
  genesis.miner = 0;
  genesis.mine_counter = chain;  // distinct content per chain
  genesis.tx_root = Hash256{};
  genesis.hash = OhieGenesisHash(chain);
  genesis.chain = chain;
  genesis.height = 0;
  genesis.rank = 0;
  genesis.next_rank = 1;
  return genesis;
}

Hash256 OhieGenesisHash(ChainId chain) {
  std::string preimage = "ohie-genesis/";
  PutFixed32(preimage, chain);
  return Sha256::Digest(preimage);
}

}  // namespace nezha
