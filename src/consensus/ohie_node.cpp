#include "consensus/ohie_node.h"

#include <algorithm>
#include <limits>

#include "ledger/validation.h"

namespace nezha {

OhieNodeView::OhieNodeView(NodeId id, ChainId num_chains,
                           std::size_t confirm_depth)
    : id_(id), num_chains_(num_chains), confirm_depth_(confirm_depth) {
  tips_.resize(num_chains);
  for (ChainId chain = 0; chain < num_chains; ++chain) {
    auto genesis = std::make_unique<OhieBlock>(MakeOhieGenesis(chain));
    tips_[chain] = genesis.get();
    blocks_.emplace(genesis->hash, std::move(genesis));
  }
}

std::vector<Hash256> OhieNodeView::TipHashes() const {
  std::vector<Hash256> hashes;
  hashes.reserve(tips_.size());
  for (const OhieBlock* tip : tips_) hashes.push_back(tip->hash);
  return hashes;
}

OhieBlock OhieNodeView::PrepareBlock(std::uint64_t mine_counter,
                                     std::vector<Transaction> txs) const {
  OhieBlock block;
  block.miner = id_;
  block.mine_counter = mine_counter;
  block.parent_tips = TipHashes();
  block.tx_root = ComputeTxMerkleRoot(txs);
  block.txs = std::move(txs);
  return block;
}

std::optional<Hash256> OhieNodeView::MissingParent(
    const OhieBlock& block) const {
  for (const Hash256& parent : block.parent_tips) {
    if (!Knows(parent)) return parent;
  }
  return std::nullopt;
}

Result<std::size_t> OhieNodeView::OnBlock(const OhieBlock& block) {
  if (Knows(block.hash)) return std::size_t{0};  // duplicate
  if (const auto missing = MissingParent(block); missing.has_value()) {
    orphans_[*missing].push_back(block);
    return std::size_t{0};
  }
  if (Status s = Attach(block); !s.ok()) return s;
  std::size_t attached = 1;

  // Drain orphans transitively unblocked by this block.
  std::vector<Hash256> ready = {block.hash};
  while (!ready.empty()) {
    const Hash256 parent = ready.back();
    ready.pop_back();
    const auto it = orphans_.find(parent);
    if (it == orphans_.end()) continue;
    std::vector<OhieBlock> waiting = std::move(it->second);
    orphans_.erase(it);
    for (OhieBlock& orphan : waiting) {
      if (Knows(orphan.hash)) continue;
      if (const auto missing = MissingParent(orphan); missing.has_value()) {
        orphans_[*missing].push_back(std::move(orphan));
        continue;
      }
      if (Attach(orphan).ok()) {
        ++attached;
        ready.push_back(orphan.hash);
      }
    }
  }
  return attached;
}

Status OhieNodeView::Attach(const OhieBlock& block) {
  using ledger::RejectBlock;
  using ledger::RejectReason;
  constexpr std::string_view kComponent = "ohie";
  // Recompute and verify every derived field.
  OhieBlock verified = block;
  verified.Seal(num_chains_);
  if (verified.hash != block.hash) {
    return RejectBlock(kComponent, RejectReason::kBadHash,
                       "block hash does not match its content");
  }
  if (verified.parent_tips.size() != num_chains_) {
    return RejectBlock(kComponent, RejectReason::kBadParentCount,
                       std::to_string(verified.parent_tips.size()) +
                           " parent tips, expected k = " +
                           std::to_string(num_chains_));
  }
  if (ComputeTxMerkleRoot(verified.txs) != verified.tx_root) {
    return RejectBlock(kComponent, RejectReason::kBadTxRoot,
                       "tx root does not cover the block body");
  }
  if (ledger::HasDuplicateTxIds(verified.txs)) {
    return RejectBlock(kComponent, RejectReason::kDuplicateTx,
                       "transaction id appears twice in one block");
  }
  const auto parent_it = blocks_.find(verified.parent_tips[verified.chain]);
  if (parent_it == blocks_.end()) {
    return Status::Internal("attach called with missing parent");
  }
  const OhieBlock& parent = *parent_it->second;
  if (parent.chain != verified.chain) {
    return RejectBlock(kComponent, RejectReason::kBadParentChain,
                       "effective parent lives on chain " +
                           std::to_string(parent.chain) + ", block on " +
                           std::to_string(verified.chain));
  }
  verified.height = parent.height + 1;
  verified.rank = parent.next_rank;
  std::uint64_t next_rank = verified.rank + 1;
  for (const Hash256& tip_hash : verified.parent_tips) {
    next_rank = std::max(next_rank, blocks_.at(tip_hash)->next_rank);
  }
  verified.next_rank = next_rank;

  auto stored = std::make_unique<OhieBlock>(std::move(verified));
  const OhieBlock* ptr = stored.get();
  blocks_.emplace(ptr->hash, std::move(stored));

  // Longest-chain fork choice; deterministic hash tie-break.
  const OhieBlock* tip = tips_[ptr->chain];
  if (ptr->height > tip->height ||
      (ptr->height == tip->height && ptr->hash < tip->hash)) {
    tips_[ptr->chain] = ptr;
  }
  return Status::Ok();
}

std::vector<const OhieBlock*> OhieNodeView::MainChain(ChainId chain) const {
  std::vector<const OhieBlock*> out;
  const OhieBlock* block = tips_[chain];
  for (;;) {
    out.push_back(block);
    if (block->height == 0) break;
    block = blocks_.at(block->parent_tips[block->chain]).get();
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::uint64_t OhieNodeView::ConfirmBar() const {
  std::uint64_t confirm_bar = std::numeric_limits<std::uint64_t>::max();
  for (ChainId chain = 0; chain < num_chains_; ++chain) {
    const auto main = MainChain(chain);
    const std::size_t confirmed_len =
        main.size() > confirm_depth_ ? main.size() - confirm_depth_ : 1;
    const OhieBlock* last_confirmed = main[confirmed_len - 1];
    confirm_bar = std::min(confirm_bar, last_confirmed->next_rank);
  }
  return confirm_bar;
}

std::vector<const OhieBlock*> OhieNodeView::ConfirmedOrder() const {
  // Partially confirmed prefix per chain + the confirm bar.
  std::vector<std::vector<const OhieBlock*>> partial(num_chains_);
  std::uint64_t confirm_bar = std::numeric_limits<std::uint64_t>::max();
  for (ChainId chain = 0; chain < num_chains_; ++chain) {
    const auto main = MainChain(chain);
    const std::size_t confirmed_len =
        main.size() > confirm_depth_ ? main.size() - confirm_depth_ : 1;
    // main[0] is genesis; partially confirmed payload blocks are
    // main[1 .. confirmed_len).
    for (std::size_t i = 1; i < confirmed_len; ++i) {
      partial[chain].push_back(main[i]);
    }
    const OhieBlock* last_confirmed = main[confirmed_len - 1];
    confirm_bar = std::min(confirm_bar, last_confirmed->next_rank);
  }

  std::vector<const OhieBlock*> confirmed;
  for (ChainId chain = 0; chain < num_chains_; ++chain) {
    for (const OhieBlock* block : partial[chain]) {
      if (block->rank < confirm_bar) confirmed.push_back(block);
    }
  }
  std::sort(confirmed.begin(), confirmed.end(),
            [](const OhieBlock* a, const OhieBlock* b) {
              if (a->rank != b->rank) return a->rank < b->rank;
              return a->chain < b->chain;
            });
  return confirmed;
}

std::vector<const OhieBlock*> OhieNodeView::AllBlocks() const {
  std::vector<const OhieBlock*> out;
  out.reserve(blocks_.size());
  for (const auto& [hash, block] : blocks_) out.push_back(block.get());
  std::sort(out.begin(), out.end(),
            [](const OhieBlock* a, const OhieBlock* b) {
              if (a->height != b->height) return a->height < b->height;
              return a->hash < b->hash;
            });
  return out;
}

std::size_t OhieNodeView::NumOrphans() const {
  std::size_t total = 0;
  for (const auto& [parent, waiting] : orphans_) total += waiting.size();
  return total;
}

}  // namespace nezha
