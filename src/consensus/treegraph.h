// TreeGraphView: a Conflux-style main-chain-based DAG ledger — the second
// mainstream DAG structure the paper targets (§II.A: "Conflux and Prism
// employ a main chain to guide the growth direction of DAG topology").
//
// Structure (following Conflux, ATC'20):
//  * every block names one PARENT (tree edge) and may name extra REFERENCE
//    edges to otherwise-unreferenced tips, so all concurrent blocks get
//    woven into one DAG;
//  * the PIVOT chain is chosen by GHOST: from genesis, repeatedly descend
//    into the child whose subtree contains the most blocks (ties toward
//    the smaller hash);
//  * the pivot block at height h defines EPOCH h: the pivot block plus
//    every block reachable from it through parent/reference edges that is
//    not already in an earlier epoch. Epochs are exactly the paper's B_e —
//    sets of concurrent blocks processed against one state snapshot;
//  * blocks within an epoch are ordered topologically, ties by hash
//    (Conflux's deterministic intra-epoch order);
//  * a pivot block buried `confirm_depth` under the pivot tip is confirmed,
//    finalizing its epoch.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/sha256.h"
#include "common/status.h"
#include "common/types.h"
#include "ledger/block.h"
#include "ledger/transaction.h"

namespace nezha {

using NodeId = std::uint32_t;

struct TGBlock {
  // --- mined content ---
  NodeId miner = 0;
  std::uint64_t mine_counter = 0;
  Hash256 parent{};                  ///< pivot-tree edge
  std::vector<Hash256> references;   ///< extra DAG edges to loose tips
  Hash256 tx_root{};
  std::vector<Transaction> txs;

  // --- derived ---
  Hash256 hash{};
  BlockHeight height = 0;  ///< parent height + 1

  std::string HashPreimage() const;
  void Seal();

  /// Wire format: mined content + transactions (derived fields recomputed
  /// by the receiver).
  std::string Serialize() const;
  static Result<TGBlock> Deserialize(std::string_view data);
};

/// The tree-graph genesis block (height 0, zero parent).
TGBlock MakeTreeGraphGenesis();
Hash256 TreeGraphGenesisHash();

/// One finalized epoch: the pivot block's height and the epoch's blocks in
/// Conflux's deterministic order (non-pivot blocks topologically, pivot
/// block last).
struct TGEpoch {
  BlockHeight pivot_height = 0;
  std::vector<const TGBlock*> blocks;
};

class TreeGraphView {
 public:
  explicit TreeGraphView(NodeId id, std::size_t confirm_depth);

  NodeId id() const { return id_; }

  /// The current pivot chain, genesis first.
  std::vector<const TGBlock*> PivotChain() const;

  /// Current pivot tip (the parent of the next mined block).
  const TGBlock* PivotTip() const;

  /// Tips that no known block references yet (candidate reference edges),
  /// excluding the pivot tip; deterministic (hash-sorted).
  std::vector<Hash256> LooseTips() const;

  /// Builds an unsealed candidate block extending this view.
  TGBlock PrepareBlock(std::uint64_t mine_counter,
                       std::vector<Transaction> txs) const;

  /// Validates and attaches a sealed block (recursively attaching waiting
  /// orphans). Returns the number of blocks attached.
  Result<std::size_t> OnBlock(const TGBlock& block);

  bool Knows(const Hash256& hash) const { return blocks_.contains(hash); }

  /// All finalized epochs (pivot buried >= confirm_depth), in pivot-height
  /// order. Epoch 0 (genesis) is skipped — it has no payload.
  std::vector<TGEpoch> ConfirmedEpochs() const;

  std::size_t NumBlocks() const { return blocks_.size(); }
  std::size_t NumOrphans() const;

  /// Every attached block (including genesis), ordered by (height, hash) —
  /// parents before children, deterministic. Anti-entropy gossip replays
  /// these to a peer that missed broadcasts.
  std::vector<const TGBlock*> AllBlocks() const;

 private:
  Status Attach(const TGBlock& block);
  std::optional<Hash256> MissingDependency(const TGBlock& block) const;

  /// Blocks of the epoch anchored at pivot block P, given the set of blocks
  /// already consumed by earlier epochs (updated in place).
  std::vector<const TGBlock*> EpochBlocks(
      const TGBlock* pivot, std::unordered_set<Hash256>& consumed) const;

  NodeId id_;
  std::size_t confirm_depth_;

  std::unordered_map<Hash256, std::unique_ptr<TGBlock>> blocks_;
  std::unordered_map<Hash256, std::vector<Hash256>> children_;
  std::unordered_map<Hash256, std::size_t> subtree_weight_;
  /// Blocks referenced (by parent or reference edge) by someone.
  std::unordered_set<Hash256> referenced_;
  std::unordered_map<Hash256, std::vector<TGBlock>> orphans_;
};

}  // namespace nezha
