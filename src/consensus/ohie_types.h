// Block structure of the OHIE protocol (Yu et al., S&P 2020) — the
// DAG-based blockchain the paper evaluates Nezha on.
//
// OHIE runs k parallel Nakamoto chains. A miner cannot choose its chain:
// it builds a block referencing the current tip of EVERY chain, and the
// block's hash assigns it to chain (hash mod k); the effective parent is
// the referenced tip of that chain. Total ordering comes from two derived
// fields:
//   rank      = effective parent's next_rank
//   next_rank = max(rank + 1, max over all referenced tips' next_rank)
// Confirmed blocks across all chains are totally ordered by (rank, chain).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sha256.h"
#include "common/types.h"
#include "ledger/transaction.h"

namespace nezha {

struct OhieBlock {
  // --- mined content (the hash preimage) ---
  NodeId miner = 0;
  std::uint64_t mine_counter = 0;       ///< per-miner uniquifier
  std::vector<Hash256> parent_tips;     ///< tip of every chain in the
                                        ///< miner's view, indexed by chain
  Hash256 tx_root{};                    ///< commitment to the payload
  std::vector<Transaction> txs;

  // --- derived (recomputed and checked by every validator) ---
  Hash256 hash{};
  ChainId chain = 0;         ///< hash mod k
  BlockHeight height = 0;    ///< effective parent's height + 1
  std::uint64_t rank = 0;
  std::uint64_t next_rank = 1;

  /// Canonical hash preimage over the mined content.
  std::string HashPreimage() const;

  /// Computes the block hash and the chain assignment (hash mod k).
  void Seal(ChainId num_chains);

  /// Wire format: mined content + transactions (derived fields are
  /// recomputed by the receiver, never trusted).
  std::string Serialize() const;
  static Result<OhieBlock> Deserialize(std::string_view data,
                                       ChainId num_chains);
};

/// Genesis block of one chain: rank 0, next_rank 1, zero hash parentage.
OhieBlock MakeOhieGenesis(ChainId chain);

/// Hash of the per-chain genesis (stable; used to bootstrap views).
Hash256 OhieGenesisHash(ChainId chain);

}  // namespace nezha
