// DagRiderSimulation: deterministic discrete-event simulation of the
// round-based BFT DAG — nodes emit a vertex per round as soon as their
// quorum clock allows, broadcasts arrive after jittered latency, and the
// wave rule commits as the DAG grows.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "consensus/dagrider.h"
#include "consensus/event_queue.h"

namespace nezha {

struct DagRiderSimConfig {
  std::uint32_t num_nodes = 4;  ///< >= 4 for f >= 1 quorum intersection
  /// Local processing/batching delay between becoming ready and emitting.
  double emit_delay_ms = 20;
  double base_latency_ms = 50;
  double jitter_ms = 50;
  double duration_ms = 60'000;
  std::uint64_t seed = 1;
};

struct DagRiderSimStats {
  std::size_t vertices_emitted = 0;
  std::uint64_t max_round = 0;        ///< node 0's final clock
  std::size_t committed_vertices = 0; ///< node 0
  std::size_t committed_batches = 0;  ///< node 0 (wave anchors)
};

class DagRiderSimulation {
 public:
  using TxSource = std::function<std::vector<Transaction>(NodeId)>;

  explicit DagRiderSimulation(const DagRiderSimConfig& config,
                              TxSource tx_source = nullptr);

  void Run();

  const DagRiderView& node(std::size_t i) const { return *nodes_[i]; }
  std::size_t num_nodes() const { return nodes_.size(); }
  const DagRiderSimStats& stats() const { return stats_; }

 private:
  void ArmEmit(NodeId node);
  void Emit(NodeId node);

  DagRiderSimConfig config_;
  TxSource tx_source_;
  Rng rng_;
  EventQueue queue_;
  std::vector<std::unique_ptr<DagRiderView>> nodes_;
  std::vector<bool> emit_armed_;
  DagRiderSimStats stats_;
};

}  // namespace nezha
