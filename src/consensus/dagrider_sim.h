// DagRiderSimulation: deterministic discrete-event simulation of the
// round-based BFT DAG — nodes emit a vertex per round as soon as their
// quorum clock allows, broadcasts arrive after jittered latency, and the
// wave rule commits as the DAG grows.
//
// Chaos plane (docs/ROBUSTNESS.md §5): every broadcast is routed through a
// fault::NetEmulator driven by config.net_plan — drops, delays, duplicates,
// reorders and partitions, all seeded. Dropped/partition-lost vertices are
// recovered by optional anti-entropy gossip plus a lossless settlement
// sweep after traffic stops. An empty plan leaves the event trace
// byte-identical to the pre-chaos simulation.
//
// Byzantine nodes (config.byzantine) misbehave in DAG-Rider's own terms:
//  * equivocate — emit a second, conflicting vertex for the same
//    (round, source) slot, broadcast strictly after the honest one so every
//    replica resolves the slot identically (first wins at admission);
//  * withhold — build vertices but keep them private until release_ms (or
//    the end-of-run settlement);
//  * invalid — keep a correct private state but broadcast structurally
//    invalid variants (tampered tx root, duplicate txs, forged hash,
//    duplicate parent source) that every honest replica must reject.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "consensus/dagrider.h"
#include "consensus/event_queue.h"
#include "fault/net_plan.h"

namespace nezha {

struct DagRiderSimConfig {
  std::uint32_t num_nodes = 4;  ///< >= 4 for f >= 1 quorum intersection
  /// Local processing/batching delay between becoming ready and emitting.
  double emit_delay_ms = 20;
  double base_latency_ms = 50;
  double jitter_ms = 50;
  double duration_ms = 60'000;
  std::uint64_t seed = 1;

  /// Seeded network chaos; empty = the byte-identical honest network.
  fault::NetPlan net_plan;
  /// Byzantine cast; disabled by default.
  fault::ByzantineConfig byzantine;
  /// Anti-entropy pull interval (0 = disabled). Required when the plan
  /// drops vertex traffic mid-run; the settlement sweep still runs at the
  /// end whenever the plan or the Byzantine cast is non-empty.
  double gossip_interval_ms = 0;
};

struct DagRiderSimStats {
  std::size_t vertices_emitted = 0;
  std::uint64_t max_round = 0;        ///< node 0's final clock
  std::size_t committed_vertices = 0; ///< node 0
  std::size_t committed_batches = 0;  ///< node 0 (wave anchors)
  std::size_t gossip_transfers = 0;   ///< vertices recovered by anti-entropy
  std::size_t byz_equivocations = 0;  ///< conflicting twin vertices sent
  std::size_t byz_withheld = 0;       ///< vertices held past their round
  std::size_t byz_invalid = 0;        ///< invalid vertices broadcast
};

class DagRiderSimulation {
 public:
  using TxSource = std::function<std::vector<Transaction>(NodeId)>;

  explicit DagRiderSimulation(const DagRiderSimConfig& config,
                              TxSource tx_source = nullptr);

  void Run();

  const DagRiderView& node(std::size_t i) const { return *nodes_[i]; }
  std::size_t num_nodes() const { return nodes_.size(); }
  const DagRiderSimStats& stats() const { return stats_; }
  const fault::NetEmulator& net() const { return net_; }

 private:
  void ArmEmit(NodeId node);
  void Emit(NodeId node);
  /// Routes one sealed vertex to every peer through the chaos plane.
  void Broadcast(const DagVertex& vertex, NodeId from);
  /// Equivocation: per peer the twin is scheduled at the same delivery time
  /// as the original, so the EventQueue's FIFO tie-break lands it second.
  void BroadcastEquivocating(const DagVertex& original, const DagVertex& twin,
                             NodeId from);
  /// Structurally invalid variant of `vertex` (flavour rotates).
  DagVertex MakeInvalidVariant(const DagVertex& vertex);
  /// Synchronous anti-entropy: `to` adopts every vertex `from` holds that
  /// it lacks (skipped while a partition separates the pair).
  void GossipPull(NodeId to, NodeId from);
  void ScheduleNextGossipEvent();
  void ReleaseWithheld();

  DagRiderSimConfig config_;
  TxSource tx_source_;
  Rng rng_;
  EventQueue queue_;
  fault::NetEmulator net_;
  std::vector<std::unique_ptr<DagRiderView>> nodes_;
  std::vector<bool> emit_armed_;
  std::vector<DagVertex> withheld_;
  bool release_scheduled_ = false;
  std::uint64_t gossip_tick_ = 0;
  std::uint64_t byz_counter_ = 0;  ///< rotates invalid flavours / markers
  DagRiderSimStats stats_;
};

}  // namespace nezha
