#include "consensus/ohie_sim.h"

#include <cmath>
#include <cstdio>
#include <string>
#include <unordered_set>

#include "analysis/det_checkpoint.h"
#include "obs/metrics.h"

namespace nezha {

namespace {

/// Marker transaction a Byzantine miner stuffs into conflicting/invalid
/// bodies so they differ from (and hash differently than) the honest one.
Transaction ByzMarkerTx(std::uint64_t counter) {
  Transaction tx;
  tx.nonce = 0xB12A'0000'0000'0000ull + counter;
  tx.payload.contract = 0xB12A;
  tx.payload.op = 0;
  return tx;
}

}  // namespace

OhieSimulation::OhieSimulation(const OhieSimConfig& config, TxSource tx_source)
    : config_(config),
      tx_source_(std::move(tx_source)),
      rng_(config.seed),
      net_(config.net_plan, "ohie") {
  nodes_.reserve(config.num_nodes);
  for (NodeId id = 0; id < config.num_nodes; ++id) {
    nodes_.push_back(std::make_unique<OhieNodeView>(id, config.num_chains,
                                                    config.confirm_depth));
  }
  stats_.blocks_per_chain.assign(config.num_chains, 0);
}

void OhieSimulation::ScheduleNextMiningEvent() {
  // Exponential inter-arrival (the Poisson block-production model).
  const double u = rng_.NextDouble();
  const double dt =
      -std::log(1.0 - u) * config_.mean_block_interval_ms;
  const double when = queue_.Now() + dt;
  if (when > config_.duration_ms) return;  // mining window over
  queue_.ScheduleAt(when, [this] {
    MineBlock();
    ScheduleNextMiningEvent();
  });
}

void OhieSimulation::MineBlock() {
  const auto miner = static_cast<NodeId>(rng_.Below(config_.num_nodes));
  std::vector<Transaction> txs;
  if (tx_source_) txs = tx_source_(miner);

  OhieBlock block =
      nodes_[miner]->PrepareBlock(mine_counter_++, std::move(txs));
  block.Seal(config_.num_chains);
  ++stats_.blocks_mined;
  ++stats_.blocks_per_chain[block.chain];
  obs::Registry()
      .GetCounter("nezha_consensus_blocks_total", {{"sim", "ohie"}})
      ->Inc();

  // The miner adopts its own (honest) block immediately; what it
  // BROADCASTS depends on its role.
  (void)nodes_[miner]->OnBlock(block);

  const fault::ByzantineConfig& byz = config_.byzantine;
  if (byz.Enabled() && byz.IsByzantine(miner)) {
    switch (byz.behavior) {
      case fault::ByzBehavior::kWithhold:
        if (byz.release_ms <= 0 || queue_.Now() < byz.release_ms) {
          ++stats_.byz_withheld;
          withheld_.push_back(std::move(block));
          if (byz.release_ms > 0 && !release_scheduled_) {
            release_scheduled_ = true;
            queue_.ScheduleAt(byz.release_ms, [this] { ReleaseWithheld(); });
          }
          return;
        }
        break;  // past the release point: behave
      case fault::ByzBehavior::kEquivocate: {
        // Two valid blocks for one mining success (a deliberate fork);
        // longest-chain + hash tie-break resolves them identically on
        // every replica.
        OhieBlock twin = nodes_[miner]->PrepareBlock(
            block.mine_counter, {ByzMarkerTx(byz_counter_++)});
        twin.Seal(config_.num_chains);
        ++stats_.blocks_mined;
        ++stats_.blocks_per_chain[twin.chain];
        ++stats_.byz_equivocations;
        (void)nodes_[miner]->OnBlock(twin);
        Broadcast(block, miner);
        Broadcast(twin, miner);
        return;
      }
      case fault::ByzBehavior::kInvalidBlock: {
        OhieBlock invalid = MakeInvalidVariant(block);
        ++byz_counter_;
        ++stats_.byz_invalid;
        Broadcast(invalid, miner);
        return;  // the honest block stays private (gossip shares it)
      }
      case fault::ByzBehavior::kNone:
        break;
    }
  }

  Broadcast(block, miner);
}

OhieBlock OhieSimulation::MakeInvalidVariant(const OhieBlock& block) {
  OhieBlock invalid = block;
  const std::uint64_t flavour = byz_counter_ % 4;
  switch (flavour) {
    case 0:
      // Tampered tx root: hash covers the lie, the body does not.
      invalid.tx_root.bytes[0] ^= 0xFF;
      invalid.Seal(config_.num_chains);
      break;
    case 1:
      // Duplicate transaction, root honestly recomputed over the bad body.
      invalid.txs.push_back(ByzMarkerTx(byz_counter_));
      invalid.txs.push_back(invalid.txs.back());
      invalid.tx_root = ComputeTxMerkleRoot(invalid.txs);
      invalid.Seal(config_.num_chains);
      break;
    case 2:
      // Forged hash: content untouched, hash corrupted after sealing.
      invalid.Seal(config_.num_chains);
      invalid.hash.bytes[0] ^= 0xFF;
      break;
    default:
      // Wrong parent reference count (k-1 tips instead of k).
      invalid.parent_tips.pop_back();
      invalid.Seal(config_.num_chains);
      break;
  }
  return invalid;
}

void OhieSimulation::ReleaseWithheld() {
  std::vector<OhieBlock> pending = std::move(withheld_);
  withheld_.clear();
  for (const OhieBlock& block : pending) {
    Broadcast(block, block.miner);
  }
}

void OhieSimulation::Broadcast(const OhieBlock& block, NodeId from) {
  for (NodeId peer = 0; peer < config_.num_nodes; ++peer) {
    if (peer == from) continue;
    if (config_.drop_probability > 0 &&
        rng_.Chance(config_.drop_probability)) {
      ++stats_.dropped_deliveries;
      continue;  // lost in the network; anti-entropy will recover it
    }
    const double delay =
        config_.base_latency_ms + rng_.NextDouble() * config_.jitter_ms;
    for (const double at : net_.Deliveries(from, peer, fault::MsgKind::kBlock,
                                           queue_.Now(), delay)) {
      queue_.ScheduleAt(at, [this, block, peer] {
        (void)nodes_[peer]->OnBlock(block);
      });
    }
  }
}

void OhieSimulation::GossipPull(NodeId to, NodeId from) {
  // Inventory exchange abstracted: `to` learns of and fetches every block
  // `from` has that it lacks, delivered parents-first after one RTT-ish
  // latency. (A real node exchanges header inventories; the effect — and
  // the block traffic — is the same.)
  if (net_.Active() && net_.Partitioned(from, to, queue_.Now())) return;
  for (const OhieBlock* block : nodes_[from]->AllBlocks()) {
    if (block->height == 0 || nodes_[to]->Knows(block->hash)) continue;
    ++stats_.gossip_transfers;
    const OhieBlock copy = *block;
    const double delay =
        config_.base_latency_ms + rng_.NextDouble() * config_.jitter_ms;
    for (const double at : net_.Deliveries(from, to, fault::MsgKind::kGossip,
                                           queue_.Now(), delay)) {
      queue_.ScheduleAt(at, [this, copy, to] {
        (void)nodes_[to]->OnBlock(copy);
      });
    }
  }
}

void OhieSimulation::ScheduleNextGossipEvent() {
  if (config_.gossip_interval_ms <= 0) return;
  const double when = queue_.Now() + config_.gossip_interval_ms;
  if (when > config_.duration_ms) return;
  queue_.ScheduleAt(when, [this] {
    for (NodeId node = 0; node < config_.num_nodes; ++node) {
      const auto peer = static_cast<NodeId>(rng_.Below(config_.num_nodes));
      if (peer != node) GossipPull(node, peer);
    }
    ScheduleNextGossipEvent();
  });
}

void OhieSimulation::Run() {
  ScheduleNextMiningEvent();
  ScheduleNextGossipEvent();
  queue_.RunUntil(config_.duration_ms);
  // Stop mining but deliver everything still in flight so views converge.
  queue_.RunToCompletion();
  // Settlement: the network "heals" — the chaos plane passes everything
  // through, withheld blocks come out, then lossless anti-entropy rounds
  // run until every view agrees (the steady-state a real gossip network
  // reaches shortly after traffic stops; bounded by the number of nodes,
  // each round fixes someone).
  if (!config_.net_plan.Empty() || config_.byzantine.Enabled()) {
    net_.Quiesce();
    ReleaseWithheld();
    queue_.RunToCompletion();
  }
  if (config_.drop_probability > 0 || !config_.net_plan.Empty() ||
      config_.byzantine.Enabled()) {
    for (std::uint32_t round = 0; round < config_.num_nodes + 1; ++round) {
      for (NodeId node = 0; node < config_.num_nodes; ++node) {
        GossipPull(node, (node + 1) % config_.num_nodes);
      }
      queue_.RunToCompletion();
    }
  }
  stats_.duration_ms = config_.duration_ms;

  // Fork accounting against node 0's final main chains.
  std::unordered_set<Hash256> on_main;
  for (ChainId chain = 0; chain < config_.num_chains; ++chain) {
    for (const OhieBlock* block : nodes_[0]->MainChain(chain)) {
      on_main.insert(block->hash);
    }
  }
  // Main chains include genesis blocks, which were not mined.
  stats_.forked_blocks =
      stats_.blocks_mined - (on_main.size() - config_.num_chains);
  stats_.confirmed_blocks = nodes_[0]->ConfirmedOrder().size();

  // kConsensus determinism checkpoint: node 0's confirmed block order — the
  // (rank, chain) total order the execution pipeline consumes.
  if (analysis::DetCheckpointRecorder& det =
          analysis::DetCheckpointRecorder::Global();
      det.enabled()) {
    det.BeginEpoch(0, "ohie-sim");
    const std::vector<const OhieBlock*> order = nodes_[0]->ConfirmedOrder();
    std::string canonical;
    canonical.reserve(32 + order.size() * 68);
    char line[96];
    std::snprintf(line, sizeof(line), "consensus sim=ohie blocks=%zu\n",
                  order.size());
    canonical += line;
    for (std::size_t i = 0; i < order.size(); ++i) {
      std::snprintf(line, sizeof(line), "c %zu ", i);
      canonical += line;
      canonical += order[i]->hash.ToHex();
      canonical += '\n';
    }
    det.Record(analysis::DetStage::kConsensus, canonical);
  }

  auto& registry = obs::Registry();
  const obs::Labels sim_label = {{"sim", "ohie"}};
  registry.GetGauge("nezha_consensus_confirmed_blocks", sim_label)
      ->Set(static_cast<std::int64_t>(stats_.confirmed_blocks));
  registry.GetGauge("nezha_consensus_forked_blocks", sim_label)
      ->Set(static_cast<std::int64_t>(stats_.forked_blocks));
  registry.GetCounter("nezha_consensus_dropped_deliveries_total", sim_label)
      ->Inc(stats_.dropped_deliveries);
  registry.GetCounter("nezha_consensus_gossip_transfers_total", sim_label)
      ->Inc(stats_.gossip_transfers);
}

}  // namespace nezha
