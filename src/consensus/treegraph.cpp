#include "consensus/treegraph.h"

#include <algorithm>

#include "common/bytes.h"
#include "ledger/validation.h"

namespace nezha {

std::string TGBlock::HashPreimage() const {
  std::string out;
  PutVarint64(out, miner);
  PutVarint64(out, mine_counter);
  out.append(reinterpret_cast<const char*>(parent.bytes.data()), 32);
  PutVarint64(out, references.size());
  for (const Hash256& ref : references) {
    out.append(reinterpret_cast<const char*>(ref.bytes.data()), 32);
  }
  out.append(reinterpret_cast<const char*>(tx_root.bytes.data()), 32);
  return out;
}

void TGBlock::Seal() { hash = Sha256::Digest(HashPreimage()); }

namespace {

bool ReadHash256(std::string_view data, std::size_t* offset, Hash256* out) {
  if (*offset + 32 > data.size()) return false;
  for (int b = 0; b < 32; ++b) {
    out->bytes[static_cast<std::size_t>(b)] = static_cast<std::uint8_t>(
        data[*offset + static_cast<std::size_t>(b)]);
  }
  *offset += 32;
  return true;
}

}  // namespace

std::string TGBlock::Serialize() const {
  std::string out = HashPreimage();
  PutVarint64(out, txs.size());
  for (const Transaction& tx : txs) {
    const std::string tx_bytes = tx.Serialize();
    PutVarint64(out, tx_bytes.size());
    out += tx_bytes;
  }
  return out;
}

Result<TGBlock> TGBlock::Deserialize(std::string_view data) {
  TGBlock block;
  std::size_t offset = 0;
  std::uint64_t miner = 0;
  if (!GetVarint64(data, &offset, &miner) ||
      !GetVarint64(data, &offset, &block.mine_counter)) {
    return Status::Corruption("truncated tree-graph block header");
  }
  block.miner = static_cast<NodeId>(miner);
  if (!ReadHash256(data, &offset, &block.parent)) {
    return Status::Corruption("truncated tree-graph parent");
  }
  std::uint64_t num_refs = 0;
  if (!GetVarint64(data, &offset, &num_refs)) {
    return Status::Corruption("truncated tree-graph reference count");
  }
  block.references.resize(num_refs);
  for (std::uint64_t i = 0; i < num_refs; ++i) {
    if (!ReadHash256(data, &offset, &block.references[i])) {
      return Status::Corruption("truncated tree-graph references");
    }
  }
  if (!ReadHash256(data, &offset, &block.tx_root)) {
    return Status::Corruption("truncated tree-graph tx root");
  }
  std::uint64_t num_txs = 0;
  if (!GetVarint64(data, &offset, &num_txs)) {
    return Status::Corruption("truncated tree-graph tx count");
  }
  block.txs.reserve(num_txs);
  for (std::uint64_t i = 0; i < num_txs; ++i) {
    std::uint64_t tx_len = 0;
    if (!GetVarint64(data, &offset, &tx_len) ||
        offset + tx_len > data.size()) {
      return Status::Corruption("truncated tree-graph tx");
    }
    auto tx = Transaction::Deserialize(data.substr(offset, tx_len));
    if (!tx.ok()) return tx.status();
    block.txs.push_back(std::move(tx.value()));
    offset += tx_len;
  }
  if (offset != data.size()) {
    return Status::Corruption("trailing bytes after tree-graph block");
  }
  block.Seal();  // recompute the hash; never trust the wire
  return block;
}

Hash256 TreeGraphGenesisHash() {
  return Sha256::Digest("treegraph-genesis");
}

TGBlock MakeTreeGraphGenesis() {
  TGBlock genesis;
  genesis.hash = TreeGraphGenesisHash();
  genesis.height = 0;
  return genesis;
}

TreeGraphView::TreeGraphView(NodeId id, std::size_t confirm_depth)
    : id_(id), confirm_depth_(confirm_depth) {
  auto genesis = std::make_unique<TGBlock>(MakeTreeGraphGenesis());
  subtree_weight_[genesis->hash] = 1;
  blocks_.emplace(genesis->hash, std::move(genesis));
}

std::vector<const TGBlock*> TreeGraphView::PivotChain() const {
  std::vector<const TGBlock*> chain;
  const TGBlock* current = blocks_.at(TreeGraphGenesisHash()).get();
  for (;;) {
    chain.push_back(current);
    const auto it = children_.find(current->hash);
    if (it == children_.end() || it->second.empty()) break;
    // GHOST: heaviest subtree wins; ties toward the smaller hash.
    const Hash256* best = nullptr;
    std::size_t best_weight = 0;
    for (const Hash256& child : it->second) {
      const std::size_t weight = subtree_weight_.at(child);
      if (best == nullptr || weight > best_weight ||
          (weight == best_weight && child < *best)) {
        best = &child;
        best_weight = weight;
      }
    }
    current = blocks_.at(*best).get();
  }
  return chain;
}

const TGBlock* TreeGraphView::PivotTip() const {
  return PivotChain().back();
}

std::vector<Hash256> TreeGraphView::LooseTips() const {
  const Hash256 pivot_tip = PivotTip()->hash;
  std::vector<Hash256> tips;
  for (const auto& [hash, block] : blocks_) {
    if (!referenced_.contains(hash) && hash != pivot_tip) {
      tips.push_back(hash);
    }
  }
  std::sort(tips.begin(), tips.end());
  return tips;
}

TGBlock TreeGraphView::PrepareBlock(std::uint64_t mine_counter,
                                    std::vector<Transaction> txs) const {
  TGBlock block;
  block.miner = id_;
  block.mine_counter = mine_counter;
  block.parent = PivotTip()->hash;
  block.references = LooseTips();
  block.tx_root = ComputeTxMerkleRoot(txs);
  block.txs = std::move(txs);
  return block;
}

std::optional<Hash256> TreeGraphView::MissingDependency(
    const TGBlock& block) const {
  if (!Knows(block.parent)) return block.parent;
  for (const Hash256& ref : block.references) {
    if (!Knows(ref)) return ref;
  }
  return std::nullopt;
}

Result<std::size_t> TreeGraphView::OnBlock(const TGBlock& block) {
  if (Knows(block.hash)) return std::size_t{0};
  if (const auto missing = MissingDependency(block); missing.has_value()) {
    orphans_[*missing].push_back(block);
    return std::size_t{0};
  }
  if (Status s = Attach(block); !s.ok()) return s;
  std::size_t attached = 1;

  std::vector<Hash256> ready = {block.hash};
  while (!ready.empty()) {
    const Hash256 parent = ready.back();
    ready.pop_back();
    const auto it = orphans_.find(parent);
    if (it == orphans_.end()) continue;
    std::vector<TGBlock> waiting = std::move(it->second);
    orphans_.erase(it);
    for (TGBlock& orphan : waiting) {
      if (Knows(orphan.hash)) continue;
      if (const auto missing = MissingDependency(orphan);
          missing.has_value()) {
        orphans_[*missing].push_back(std::move(orphan));
        continue;
      }
      if (Attach(orphan).ok()) {
        ++attached;
        ready.push_back(orphan.hash);
      }
    }
  }
  return attached;
}

Status TreeGraphView::Attach(const TGBlock& block) {
  using ledger::RejectBlock;
  using ledger::RejectReason;
  constexpr std::string_view kComponent = "treegraph";
  TGBlock verified = block;
  verified.Seal();
  if (verified.hash != block.hash) {
    return RejectBlock(kComponent, RejectReason::kBadHash,
                       "block hash does not match its content");
  }
  if (ComputeTxMerkleRoot(verified.txs) != verified.tx_root) {
    return RejectBlock(kComponent, RejectReason::kBadTxRoot,
                       "tx root does not cover the block body");
  }
  if (ledger::HasDuplicateTxIds(verified.txs)) {
    return RejectBlock(kComponent, RejectReason::kDuplicateTx,
                       "transaction id appears twice in one block");
  }
  const TGBlock& parent = *blocks_.at(verified.parent);
  verified.height = parent.height + 1;

  auto stored = std::make_unique<TGBlock>(std::move(verified));
  const TGBlock* ptr = stored.get();
  blocks_.emplace(ptr->hash, std::move(stored));

  children_[ptr->parent].push_back(ptr->hash);
  referenced_.insert(ptr->parent);
  for (const Hash256& ref : ptr->references) referenced_.insert(ref);

  // GHOST weights: every pivot-tree ancestor gains one block.
  subtree_weight_[ptr->hash] = 1;
  const TGBlock* ancestor = &parent;
  for (;;) {
    ++subtree_weight_[ancestor->hash];
    if (ancestor->height == 0) break;
    ancestor = blocks_.at(ancestor->parent).get();
  }
  return Status::Ok();
}

std::vector<const TGBlock*> TreeGraphView::EpochBlocks(
    const TGBlock* pivot, std::unordered_set<Hash256>& consumed) const {
  // Collect everything reachable from the pivot through parent + reference
  // edges that earlier epochs have not consumed.
  std::unordered_set<Hash256> in_epoch;
  std::vector<const TGBlock*> stack = {pivot};
  in_epoch.insert(pivot->hash);
  while (!stack.empty()) {
    const TGBlock* current = stack.back();
    stack.pop_back();
    std::vector<Hash256> deps = {current->parent};
    deps.insert(deps.end(), current->references.begin(),
                current->references.end());
    for (const Hash256& dep : deps) {
      if (current->height == 0) continue;  // genesis has no real parent
      if (consumed.contains(dep) || in_epoch.contains(dep)) continue;
      in_epoch.insert(dep);
      stack.push_back(blocks_.at(dep).get());
    }
  }

  // Deterministic topological order inside the epoch (Kahn, smallest-hash
  // first among ready blocks). The pivot is the unique sink, so it lands
  // last — Conflux's epoch order.
  std::unordered_map<Hash256, std::size_t> pending;  // unmet in-epoch deps
  std::unordered_map<Hash256, std::vector<Hash256>> dependants;
  for (const Hash256& member : in_epoch) {
    const TGBlock* block = blocks_.at(member).get();
    std::size_t unmet = 0;
    std::vector<Hash256> deps = {block->parent};
    deps.insert(deps.end(), block->references.begin(),
                block->references.end());
    for (const Hash256& dep : deps) {
      if (in_epoch.contains(dep)) {
        ++unmet;
        dependants[dep].push_back(member);
      }
    }
    pending[member] = unmet;
  }
  std::vector<Hash256> ready;
  for (const auto& [hash, unmet] : pending) {
    if (unmet == 0) ready.push_back(hash);
  }
  std::sort(ready.begin(), ready.end());

  std::vector<const TGBlock*> ordered;
  while (!ready.empty()) {
    // Smallest hash first; keep `ready` sorted descending for cheap pops.
    const Hash256 next = ready.front();
    ready.erase(ready.begin());
    ordered.push_back(blocks_.at(next).get());
    consumed.insert(next);
    const auto it = dependants.find(next);
    if (it == dependants.end()) continue;
    for (const Hash256& dep : it->second) {
      if (--pending[dep] == 0) {
        ready.insert(std::lower_bound(ready.begin(), ready.end(), dep), dep);
      }
    }
  }
  return ordered;
}

std::vector<TGEpoch> TreeGraphView::ConfirmedEpochs() const {
  const auto pivot_chain = PivotChain();
  if (pivot_chain.size() <= confirm_depth_) return {};
  const std::size_t confirmed_len = pivot_chain.size() - confirm_depth_;

  std::vector<TGEpoch> epochs;
  std::unordered_set<Hash256> consumed = {TreeGraphGenesisHash()};
  for (std::size_t i = 1; i < confirmed_len; ++i) {
    TGEpoch epoch;
    epoch.pivot_height = pivot_chain[i]->height;
    epoch.blocks = EpochBlocks(pivot_chain[i], consumed);
    epochs.push_back(std::move(epoch));
  }
  return epochs;
}

std::vector<const TGBlock*> TreeGraphView::AllBlocks() const {
  std::vector<const TGBlock*> out;
  out.reserve(blocks_.size());
  for (const auto& [hash, block] : blocks_) out.push_back(block.get());
  std::sort(out.begin(), out.end(), [](const TGBlock* a, const TGBlock* b) {
    if (a->height != b->height) return a->height < b->height;
    return a->hash < b->hash;
  });
  return out;
}

std::size_t TreeGraphView::NumOrphans() const {
  std::size_t total = 0;
  for (const auto& [hash, waiting] : orphans_) total += waiting.size();
  return total;
}

}  // namespace nezha
