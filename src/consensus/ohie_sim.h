// OhieSimulation: a deterministic discrete-event simulation of an OHIE
// network — N honest miners over k parallel chains, Poisson block
// production, latency-delayed broadcast — standing in for the paper's
// 12-miner Alibaba-cloud deployment (DESIGN.md §4).
//
// Mining abstracts proof-of-work as a global Poisson process (exponential
// inter-arrival times, uniformly random winning miner), the standard
// Nakamoto-consensus model. Everything else — chain assignment by hash,
// rank bookkeeping, fork choice, orphan handling, confirmation — runs the
// real protocol logic in OhieNodeView.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "consensus/event_queue.h"
#include "consensus/ohie_node.h"
#include "fault/net_plan.h"

namespace nezha {

struct OhieSimConfig {
  ChainId num_chains = 4;
  std::uint32_t num_nodes = 5;
  /// Expected time between blocks mined network-wide, ms. With k chains the
  /// per-chain expected interval is num_chains * this value.
  double mean_block_interval_ms = 250;
  /// One-way propagation delay: base + U[0, jitter).
  double base_latency_ms = 50;
  double jitter_ms = 50;
  /// Probability that one broadcast delivery is lost. Lost blocks are
  /// recovered by the periodic pull-based gossip below.
  double drop_probability = 0;
  /// Anti-entropy interval: each node periodically pulls blocks it lacks
  /// from one random peer (0 disables gossip; required when drops > 0).
  double gossip_interval_ms = 1'000;
  std::size_t confirm_depth = 6;
  double duration_ms = 60'000;
  std::uint64_t seed = 1;

  /// Seeded network chaos plane (docs/ROBUSTNESS.md §5); empty = the
  /// byte-identical honest network. Composes with drop_probability above
  /// (the legacy uniform-loss knob).
  fault::NetPlan net_plan;
  /// Byzantine cast; disabled by default. Equivocating miners fork (two
  /// valid blocks per mining success — fork choice resolves them);
  /// withholding miners mine privately until release_ms / settlement;
  /// invalid-block miners broadcast structurally invalid blocks that every
  /// honest node must reject.
  fault::ByzantineConfig byzantine;
};

struct OhieSimStats {
  std::size_t blocks_mined = 0;
  std::vector<std::size_t> blocks_per_chain;
  /// Mined blocks that did not end on any node-0 main chain (forked off).
  std::size_t forked_blocks = 0;
  std::size_t confirmed_blocks = 0;  ///< per node 0's final view
  std::size_t dropped_deliveries = 0;
  std::size_t gossip_transfers = 0;  ///< blocks recovered by anti-entropy
  std::size_t byz_equivocations = 0; ///< conflicting twin blocks mined
  std::size_t byz_withheld = 0;      ///< blocks mined privately
  std::size_t byz_invalid = 0;       ///< invalid blocks broadcast
  double duration_ms = 0;
};

class OhieSimulation {
 public:
  /// `tx_source` supplies each mined block's payload (may be empty/null).
  using TxSource = std::function<std::vector<Transaction>(NodeId miner)>;

  explicit OhieSimulation(const OhieSimConfig& config,
                          TxSource tx_source = nullptr);

  /// Mines for `duration_ms` of simulated time, then drains all in-flight
  /// deliveries so every node converges to the same view.
  void Run();

  const OhieNodeView& node(std::size_t i) const { return *nodes_[i]; }
  std::size_t num_nodes() const { return nodes_.size(); }
  const OhieSimStats& stats() const { return stats_; }
  const fault::NetEmulator& net() const { return net_; }
  double Now() const { return queue_.Now(); }

 private:
  void ScheduleNextMiningEvent();
  void ScheduleNextGossipEvent();
  void MineBlock();
  void Broadcast(const OhieBlock& block, NodeId from);
  /// Anti-entropy: `to` pulls every block it lacks from `from` (skipped
  /// while a partition separates the pair).
  void GossipPull(NodeId to, NodeId from);
  /// Structurally invalid variant of `block` (flavour rotates).
  OhieBlock MakeInvalidVariant(const OhieBlock& block);
  void ReleaseWithheld();

  OhieSimConfig config_;
  TxSource tx_source_;
  Rng rng_;
  EventQueue queue_;
  fault::NetEmulator net_;
  std::vector<std::unique_ptr<OhieNodeView>> nodes_;
  std::uint64_t mine_counter_ = 0;
  std::vector<OhieBlock> withheld_;
  bool release_scheduled_ = false;
  std::uint64_t byz_counter_ = 0;  ///< rotates invalid flavours / markers
  OhieSimStats stats_;
};

}  // namespace nezha
