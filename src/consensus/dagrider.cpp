#include "consensus/dagrider.h"

#include <algorithm>

#include "common/bytes.h"
#include "ledger/validation.h"

namespace nezha {

std::string DagVertex::HashPreimage() const {
  std::string out;
  PutVarint64(out, source);
  PutVarint64(out, round);
  PutVarint64(out, parents.size());
  for (const Hash256& parent : parents) {
    out.append(reinterpret_cast<const char*>(parent.bytes.data()), 32);
  }
  out.append(reinterpret_cast<const char*>(tx_root.bytes.data()), 32);
  return out;
}

void DagVertex::Seal() { hash = Sha256::Digest(HashPreimage()); }

DagRiderView::DagRiderView(NodeId id, std::uint32_t num_nodes)
    : id_(id),
      num_nodes_(num_nodes),
      f_(num_nodes >= 4 ? (num_nodes - 1) / 3 : 0) {}

NodeId DagRiderView::WaveLeader(std::uint64_t wave, std::uint32_t num_nodes) {
  // Shared coin, abstracted: a seeded hash every replica evaluates alike.
  std::string preimage = "dagrider-coin/";
  PutFixed64(preimage, wave);
  const Hash256 digest = Sha256::Digest(preimage);
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value = (value << 8) | digest.bytes[static_cast<std::size_t>(i)];
  }
  return static_cast<NodeId>(value % num_nodes);
}

const DagVertex* DagRiderView::VertexOf(std::uint64_t round,
                                        NodeId source) const {
  const auto it = rounds_.find(round);
  if (it == rounds_.end()) return nullptr;
  for (const DagVertex* vertex : it->second) {
    if (vertex->source == source) return vertex;
  }
  return nullptr;
}

bool DagRiderView::CanEmit() const {
  if (next_emit_round_ == 1) return true;
  const auto it = rounds_.find(next_emit_round_ - 1);
  return it != rounds_.end() && it->second.size() >= quorum();
}

DagVertex DagRiderView::PrepareVertex(std::vector<Transaction> txs) const {
  DagVertex vertex;
  vertex.source = id_;
  vertex.round = next_emit_round_;
  if (vertex.round > 1) {
    // Reference every known vertex of the previous round (a superset of
    // the required 2f+1 strong edges), deterministically ordered.
    const auto& previous = rounds_.at(vertex.round - 1);
    for (const DagVertex* parent : previous) {
      vertex.parents.push_back(parent->hash);
    }
    std::sort(vertex.parents.begin(), vertex.parents.end());
  }
  vertex.tx_root = ComputeTxMerkleRoot(txs);
  vertex.txs = std::move(txs);
  return vertex;
}

std::optional<Hash256> DagRiderView::MissingParent(
    const DagVertex& vertex) const {
  for (const Hash256& parent : vertex.parents) {
    if (!Knows(parent)) return parent;
  }
  return std::nullopt;
}

Result<std::size_t> DagRiderView::OnVertex(const DagVertex& vertex) {
  if (Knows(vertex.hash)) return std::size_t{0};
  if (const auto missing = MissingParent(vertex); missing.has_value()) {
    orphans_[*missing].push_back(vertex);
    return std::size_t{0};
  }
  if (Status s = Attach(vertex); !s.ok()) return s;
  std::size_t attached = 1;

  std::vector<Hash256> ready = {vertex.hash};
  while (!ready.empty()) {
    const Hash256 parent = ready.back();
    ready.pop_back();
    const auto it = orphans_.find(parent);
    if (it == orphans_.end()) continue;
    std::vector<DagVertex> waiting = std::move(it->second);
    orphans_.erase(it);
    for (DagVertex& orphan : waiting) {
      if (Knows(orphan.hash)) continue;
      if (const auto missing = MissingParent(orphan); missing.has_value()) {
        orphans_[*missing].push_back(std::move(orphan));
        continue;
      }
      if (Attach(orphan).ok()) {
        ++attached;
        ready.push_back(orphan.hash);
      }
    }
  }
  TryCommitWaves();
  return attached;
}

Status DagRiderView::Attach(const DagVertex& vertex) {
  using ledger::RejectBlock;
  using ledger::RejectReason;
  constexpr std::string_view kComponent = "dagrider";
  DagVertex verified = vertex;
  verified.Seal();
  if (verified.hash != vertex.hash) {
    return RejectBlock(kComponent, RejectReason::kBadHash,
                       "vertex hash does not match its content");
  }
  if (ComputeTxMerkleRoot(verified.txs) != verified.tx_root) {
    return RejectBlock(kComponent, RejectReason::kBadTxRoot,
                       "tx root does not cover the vertex body");
  }
  if (ledger::HasDuplicateTxIds(verified.txs)) {
    return RejectBlock(kComponent, RejectReason::kDuplicateTx,
                       "transaction id appears twice in one vertex");
  }
  if (verified.round == 0) {
    return RejectBlock(kComponent, RejectReason::kBadRound,
                       "rounds start at 1");
  }
  if (verified.source >= num_nodes_) {
    return RejectBlock(kComponent, RejectReason::kBadSource,
                       "source " + std::to_string(verified.source) +
                           " >= " + std::to_string(num_nodes_));
  }
  if (verified.round == 1) {
    if (!verified.parents.empty()) {
      return RejectBlock(kComponent, RejectReason::kBadParentCount,
                         "round-1 vertex must have no parents");
    }
  } else {
    if (verified.parents.size() < quorum()) {
      return RejectBlock(kComponent, RejectReason::kBadParentCount,
                         std::to_string(verified.parents.size()) +
                             " strong edges, need 2f+1 = " +
                             std::to_string(quorum()));
    }
    std::unordered_set<NodeId> sources;
    for (const Hash256& parent : verified.parents) {
      const DagVertex& p = *vertices_.at(parent);
      if (p.round != verified.round - 1) {
        return RejectBlock(kComponent, RejectReason::kBadParentRound,
                           "parent of round " + std::to_string(p.round) +
                               " under a round-" +
                               std::to_string(verified.round) + " vertex");
      }
      if (!sources.insert(p.source).second) {
        return RejectBlock(kComponent, RejectReason::kDuplicateParentSource,
                           "two parents by source " +
                               std::to_string(p.source));
      }
    }
  }
  if (VertexOf(verified.round, verified.source) != nullptr) {
    // One vertex per (round, source); a second one is equivocation — the
    // Byzantine behaviour the chaos harness stages. First writer wins on
    // every honest replica (deterministic broadcast order), so views agree.
    return RejectBlock(kComponent, RejectReason::kEquivocation,
                       "second vertex by source " +
                           std::to_string(verified.source) + " at round " +
                           std::to_string(verified.round));
  }

  const std::uint64_t round = verified.round;
  const NodeId source = verified.source;
  auto stored = std::make_unique<DagVertex>(std::move(verified));
  const DagVertex* ptr = stored.get();
  vertices_.emplace(ptr->hash, std::move(stored));
  rounds_[round].push_back(ptr);
  // Keep per-round lists deterministically ordered by source.
  auto& bucket = rounds_[round];
  std::sort(bucket.begin(), bucket.end(),
            [](const DagVertex* a, const DagVertex* b) {
              return a->source < b->source;
            });
  if (source == id_ && round == next_emit_round_) ++next_emit_round_;
  return Status::Ok();
}

bool DagRiderView::Reaches(const Hash256& from, const Hash256& to) const {
  if (from == to) return true;
  const DagVertex* target = vertices_.at(to).get();
  std::vector<const DagVertex*> stack = {vertices_.at(from).get()};
  std::unordered_set<Hash256> seen = {from};
  while (!stack.empty()) {
    const DagVertex* current = stack.back();
    stack.pop_back();
    if (current->round <= target->round) continue;  // can't go back up
    for (const Hash256& parent : current->parents) {
      if (parent == to) return true;
      if (seen.insert(parent).second) {
        stack.push_back(vertices_.at(parent).get());
      }
    }
  }
  return false;
}

void DagRiderView::TryCommitWaves() {
  // Examine undecided waves in order; a wave whose leader gathers a quorum
  // of last-round paths commits (sweeping up reachable earlier leaders).
  // Waves without a decidable quorum yet stay open — they may still commit
  // directly later or be committed/skipped by a later wave's recursion.
  for (std::uint64_t wave = next_wave_;; ++wave) {
    const std::uint64_t leader_round = 4 * wave + 1;
    const std::uint64_t decision_round = 4 * wave + 4;
    const auto decision_it = rounds_.find(decision_round);
    if (decision_it == rounds_.end() ||
        decision_it->second.size() < quorum()) {
      return;  // nothing at or past this wave is decidable yet
    }
    const DagVertex* leader =
        VertexOf(leader_round, WaveLeader(wave, num_nodes_));
    if (leader == nullptr) continue;  // leader vertex absent: wave undecided
    if (wave < next_wave_) continue;  // already decided

    std::size_t supporters = 0;
    for (const DagVertex* vertex : decision_it->second) {
      if (Reaches(vertex->hash, leader->hash)) ++supporters;
    }
    if (supporters >= quorum()) {
      CommitWave(wave, leader);
      // next_wave_ moved past `wave`; the loop continues scanning forward.
      wave = next_wave_ - 1;
    }
  }
}

void DagRiderView::CommitWave(std::uint64_t wave, const DagVertex* leader) {
  // Recursive catch-up: walk back through undecided waves; a leader
  // reachable from the most recently adopted anchor commits too.
  std::vector<const DagVertex*> anchors = {leader};
  const DagVertex* cursor = leader;
  for (std::uint64_t w = wave; w-- > next_wave_;) {
    const DagVertex* earlier =
        VertexOf(4 * w + 1, WaveLeader(w, num_nodes_));
    if (earlier != nullptr && Reaches(cursor->hash, earlier->hash)) {
      anchors.push_back(earlier);
      cursor = earlier;
    }
    // else: wave w is skipped permanently (no honest node committed it —
    // otherwise quorum intersection would have forced a path from cursor).
  }
  std::reverse(anchors.begin(), anchors.end());
  for (const DagVertex* anchor : anchors) DeliverCausalHistory(anchor);
  next_wave_ = wave + 1;
}

void DagRiderView::DeliverCausalHistory(const DagVertex* anchor) {
  // Collect the anchor's undelivered ancestry.
  std::vector<const DagVertex*> batch;
  std::vector<const DagVertex*> stack = {anchor};
  std::unordered_set<Hash256> visiting;
  while (!stack.empty()) {
    const DagVertex* current = stack.back();
    stack.pop_back();
    if (delivered_.contains(current->hash) ||
        !visiting.insert(current->hash).second) {
      continue;
    }
    batch.push_back(current);
    for (const Hash256& parent : current->parents) {
      stack.push_back(vertices_.at(parent).get());
    }
  }
  std::sort(batch.begin(), batch.end(),
            [](const DagVertex* a, const DagVertex* b) {
              if (a->round != b->round) return a->round < b->round;
              return a->source < b->source;
            });
  for (const DagVertex* vertex : batch) {
    delivered_.insert(vertex->hash);
    committed_.push_back(vertex);
  }
  batch_offsets_.push_back(committed_.size());
}

std::vector<const DagVertex*> DagRiderView::AllVertices() const {
  std::vector<const DagVertex*> out;
  out.reserve(vertices_.size());
  for (const auto& [hash, vertex] : vertices_) out.push_back(vertex.get());
  std::sort(out.begin(), out.end(),
            [](const DagVertex* a, const DagVertex* b) {
              if (a->round != b->round) return a->round < b->round;
              return a->source < b->source;
            });
  return out;
}

std::size_t DagRiderView::NumOrphans() const {
  std::size_t total = 0;
  for (const auto& [hash, waiting] : orphans_) total += waiting.size();
  return total;
}

}  // namespace nezha
