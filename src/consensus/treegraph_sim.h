// TreeGraphSimulation: discrete-event simulation of a Conflux-style
// tree-graph network — Poisson mining over one shared DAG, latency-delayed
// broadcast — mirroring OhieSimulation for the main-chain-based DAG family.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "consensus/event_queue.h"
#include "consensus/treegraph.h"
#include "fault/net_plan.h"

namespace nezha {

struct TreeGraphSimConfig {
  std::uint32_t num_nodes = 5;
  /// Expected time between blocks mined network-wide, ms.
  double mean_block_interval_ms = 250;
  double base_latency_ms = 50;
  double jitter_ms = 50;
  std::size_t confirm_depth = 6;
  double duration_ms = 60'000;
  std::uint64_t seed = 1;

  /// Seeded network chaos plane (docs/ROBUSTNESS.md §5); empty = the
  /// byte-identical honest network.
  fault::NetPlan net_plan;
  /// Byzantine cast; disabled by default. Equivocating miners fork (GHOST
  /// resolves them); withholding miners mine privately until release_ms /
  /// settlement; invalid-block miners broadcast structurally invalid
  /// blocks that every honest node must reject.
  fault::ByzantineConfig byzantine;
  /// Anti-entropy pull interval (0 = disabled). Required when the plan
  /// drops block traffic mid-run; the settlement sweep still runs at the
  /// end whenever the plan or the Byzantine cast is non-empty.
  double gossip_interval_ms = 0;
};

struct TreeGraphSimStats {
  std::size_t blocks_mined = 0;
  std::size_t confirmed_epochs = 0;   ///< per node 0's final view
  std::size_t confirmed_blocks = 0;
  double max_epoch_size = 0;          ///< peak block concurrency observed
  double mean_epoch_size = 0;         ///< the DAG's average block concurrency
  std::size_t gossip_transfers = 0;   ///< blocks recovered by anti-entropy
  std::size_t byz_equivocations = 0;  ///< conflicting twin blocks mined
  std::size_t byz_withheld = 0;       ///< blocks mined privately
  std::size_t byz_invalid = 0;        ///< invalid blocks broadcast
};

class TreeGraphSimulation {
 public:
  using TxSource = std::function<std::vector<Transaction>(NodeId miner)>;

  explicit TreeGraphSimulation(const TreeGraphSimConfig& config,
                               TxSource tx_source = nullptr);

  void Run();

  const TreeGraphView& node(std::size_t i) const { return *nodes_[i]; }
  std::size_t num_nodes() const { return nodes_.size(); }
  const TreeGraphSimStats& stats() const { return stats_; }
  const fault::NetEmulator& net() const { return net_; }

 private:
  void ScheduleNextMiningEvent();
  void MineBlock();
  /// Routes one sealed block to every peer through the chaos plane.
  void Broadcast(const TGBlock& block, NodeId from);
  /// Synchronous anti-entropy: `to` adopts every block `from` holds that
  /// it lacks (skipped while a partition separates the pair).
  void GossipPull(NodeId to, NodeId from);
  void ScheduleNextGossipEvent();
  /// Structurally invalid variant of `block` (flavour rotates).
  TGBlock MakeInvalidVariant(const TGBlock& block);
  void ReleaseWithheld();

  TreeGraphSimConfig config_;
  TxSource tx_source_;
  Rng rng_;
  EventQueue queue_;
  fault::NetEmulator net_;
  std::vector<std::unique_ptr<TreeGraphView>> nodes_;
  std::uint64_t mine_counter_ = 0;
  std::vector<TGBlock> withheld_;
  bool release_scheduled_ = false;
  std::uint64_t gossip_tick_ = 0;
  std::uint64_t byz_counter_ = 0;  ///< rotates invalid flavours / markers
  /// Simulated mining time per mine_counter — feeds the per-epoch
  /// assembly-lag histogram at the end of Run().
  std::unordered_map<std::uint64_t, double> mined_at_ms_;
  TreeGraphSimStats stats_;
};

}  // namespace nezha
