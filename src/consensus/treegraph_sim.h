// TreeGraphSimulation: discrete-event simulation of a Conflux-style
// tree-graph network — Poisson mining over one shared DAG, latency-delayed
// broadcast — mirroring OhieSimulation for the main-chain-based DAG family.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "consensus/event_queue.h"
#include "consensus/treegraph.h"

namespace nezha {

struct TreeGraphSimConfig {
  std::uint32_t num_nodes = 5;
  /// Expected time between blocks mined network-wide, ms.
  double mean_block_interval_ms = 250;
  double base_latency_ms = 50;
  double jitter_ms = 50;
  std::size_t confirm_depth = 6;
  double duration_ms = 60'000;
  std::uint64_t seed = 1;
};

struct TreeGraphSimStats {
  std::size_t blocks_mined = 0;
  std::size_t confirmed_epochs = 0;   ///< per node 0's final view
  std::size_t confirmed_blocks = 0;
  double max_epoch_size = 0;          ///< peak block concurrency observed
  double mean_epoch_size = 0;         ///< the DAG's average block concurrency
};

class TreeGraphSimulation {
 public:
  using TxSource = std::function<std::vector<Transaction>(NodeId miner)>;

  explicit TreeGraphSimulation(const TreeGraphSimConfig& config,
                               TxSource tx_source = nullptr);

  void Run();

  const TreeGraphView& node(std::size_t i) const { return *nodes_[i]; }
  std::size_t num_nodes() const { return nodes_.size(); }
  const TreeGraphSimStats& stats() const { return stats_; }

 private:
  void ScheduleNextMiningEvent();
  void MineBlock();

  TreeGraphSimConfig config_;
  TxSource tx_source_;
  Rng rng_;
  EventQueue queue_;
  std::vector<std::unique_ptr<TreeGraphView>> nodes_;
  std::uint64_t mine_counter_ = 0;
  /// Simulated mining time per mine_counter — feeds the per-epoch
  /// assembly-lag histogram at the end of Run().
  std::unordered_map<std::uint64_t, double> mined_at_ms_;
  TreeGraphSimStats stats_;
};

}  // namespace nezha
