#include "consensus/treegraph_sim.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "analysis/det_checkpoint.h"
#include "obs/metrics.h"

namespace nezha {

namespace {

/// Marker transaction a Byzantine miner stuffs into conflicting/invalid
/// bodies so they differ from (and hash differently than) the honest one.
Transaction ByzMarkerTx(std::uint64_t counter) {
  Transaction tx;
  tx.nonce = 0xB12A'0000'0000'0000ull + counter;
  tx.payload.contract = 0xB12A;
  tx.payload.op = 0;
  return tx;
}

}  // namespace

TreeGraphSimulation::TreeGraphSimulation(const TreeGraphSimConfig& config,
                                         TxSource tx_source)
    : config_(config),
      tx_source_(std::move(tx_source)),
      rng_(config.seed),
      net_(config.net_plan, "treegraph") {
  nodes_.reserve(config.num_nodes);
  for (NodeId id = 0; id < config.num_nodes; ++id) {
    nodes_.push_back(
        std::make_unique<TreeGraphView>(id, config.confirm_depth));
  }
}

void TreeGraphSimulation::ScheduleNextMiningEvent() {
  const double u = rng_.NextDouble();
  const double dt = -std::log(1.0 - u) * config_.mean_block_interval_ms;
  const double when = queue_.Now() + dt;
  if (when > config_.duration_ms) return;
  queue_.ScheduleAt(when, [this] {
    MineBlock();
    ScheduleNextMiningEvent();
  });
}

void TreeGraphSimulation::MineBlock() {
  const auto miner = static_cast<NodeId>(rng_.Below(config_.num_nodes));
  std::vector<Transaction> txs;
  if (tx_source_) txs = tx_source_(miner);

  TGBlock block = nodes_[miner]->PrepareBlock(mine_counter_++, std::move(txs));
  block.Seal();
  ++stats_.blocks_mined;
  mined_at_ms_[block.mine_counter] = queue_.Now();
  obs::Registry()
      .GetCounter("nezha_consensus_blocks_total", {{"sim", "treegraph"}})
      ->Inc();

  // The miner adopts its own (honest) block immediately; what it
  // BROADCASTS depends on its role.
  (void)nodes_[miner]->OnBlock(block);

  const fault::ByzantineConfig& byz = config_.byzantine;
  if (byz.Enabled() && byz.IsByzantine(miner)) {
    switch (byz.behavior) {
      case fault::ByzBehavior::kWithhold:
        if (byz.release_ms <= 0 || queue_.Now() < byz.release_ms) {
          ++stats_.byz_withheld;
          withheld_.push_back(std::move(block));
          if (byz.release_ms > 0 && !release_scheduled_) {
            release_scheduled_ = true;
            queue_.ScheduleAt(byz.release_ms, [this] { ReleaseWithheld(); });
          }
          return;
        }
        break;  // past the release point: behave
      case fault::ByzBehavior::kEquivocate: {
        // Two valid siblings under one pivot parent (a deliberate fork);
        // GHOST + hash tie-break resolves them identically everywhere.
        TGBlock twin = nodes_[miner]->PrepareBlock(
            block.mine_counter, {ByzMarkerTx(byz_counter_++)});
        twin.Seal();
        ++stats_.blocks_mined;
        ++stats_.byz_equivocations;
        mined_at_ms_[twin.mine_counter] = queue_.Now();
        (void)nodes_[miner]->OnBlock(twin);
        Broadcast(block, miner);
        Broadcast(twin, miner);
        return;
      }
      case fault::ByzBehavior::kInvalidBlock: {
        TGBlock invalid = MakeInvalidVariant(block);
        ++byz_counter_;
        ++stats_.byz_invalid;
        Broadcast(invalid, miner);
        return;  // the honest block stays private (gossip may share it)
      }
      case fault::ByzBehavior::kNone:
        break;
    }
  }

  Broadcast(block, miner);
}

void TreeGraphSimulation::Broadcast(const TGBlock& block, NodeId from) {
  for (NodeId peer = 0; peer < config_.num_nodes; ++peer) {
    if (peer == from) continue;
    const double delay =
        config_.base_latency_ms + rng_.NextDouble() * config_.jitter_ms;
    for (const double at : net_.Deliveries(from, peer, fault::MsgKind::kBlock,
                                           queue_.Now(), delay)) {
      queue_.ScheduleAt(at, [this, block, peer] {
        (void)nodes_[peer]->OnBlock(block);
      });
    }
  }
}

TGBlock TreeGraphSimulation::MakeInvalidVariant(const TGBlock& block) {
  TGBlock invalid = block;
  switch (byz_counter_ % 3) {
    case 0:
      // Tampered tx root: hash covers the lie, the body does not.
      invalid.tx_root.bytes[0] ^= 0xFF;
      invalid.Seal();
      break;
    case 1:
      // Duplicate transaction, root honestly recomputed over the bad body.
      invalid.txs.push_back(ByzMarkerTx(byz_counter_));
      invalid.txs.push_back(invalid.txs.back());
      invalid.tx_root = ComputeTxMerkleRoot(invalid.txs);
      invalid.Seal();
      break;
    default:
      // Forged hash: content untouched, hash corrupted after sealing.
      invalid.Seal();
      invalid.hash.bytes[0] ^= 0xFF;
      break;
  }
  return invalid;
}

void TreeGraphSimulation::GossipPull(NodeId to, NodeId from) {
  if (net_.Active() && net_.Partitioned(from, to, queue_.Now())) return;
  for (const TGBlock* block : nodes_[from]->AllBlocks()) {
    if (block->height == 0 || nodes_[to]->Knows(block->hash)) continue;
    ++stats_.gossip_transfers;
    (void)nodes_[to]->OnBlock(*block);
  }
}

void TreeGraphSimulation::ScheduleNextGossipEvent() {
  if (config_.gossip_interval_ms <= 0 || config_.num_nodes < 2) return;
  const double when = queue_.Now() + config_.gossip_interval_ms;
  if (when > config_.duration_ms) return;
  queue_.ScheduleAt(when, [this] {
    // Deterministic rotating ring: over n-1 ticks every ordered pair pulls.
    ++gossip_tick_;
    const std::uint32_t n = config_.num_nodes;
    const auto offset =
        static_cast<std::uint32_t>(1 + gossip_tick_ % (n - 1));
    for (NodeId node = 0; node < n; ++node) {
      GossipPull(node, (node + offset) % n);
    }
    ScheduleNextGossipEvent();
  });
}

void TreeGraphSimulation::ReleaseWithheld() {
  std::vector<TGBlock> pending = std::move(withheld_);
  withheld_.clear();
  for (const TGBlock& block : pending) {
    Broadcast(block, block.miner);
  }
}

void TreeGraphSimulation::Run() {
  ScheduleNextMiningEvent();
  ScheduleNextGossipEvent();
  queue_.RunUntil(config_.duration_ms);
  queue_.RunToCompletion();

  // Settlement: once mining stops, the network "heals" — the chaos plane
  // passes everything through, withheld blocks come out, and a lossless
  // anti-entropy ring sweep converges every view. Skipped entirely for the
  // honest configuration (byte-identical traces).
  if (!config_.net_plan.Empty() || config_.byzantine.Enabled()) {
    net_.Quiesce();
    ReleaseWithheld();
    queue_.RunToCompletion();
    if (config_.num_nodes > 1) {
      for (std::uint32_t round = 0; round < config_.num_nodes + 1; ++round) {
        for (NodeId node = 0; node < config_.num_nodes; ++node) {
          GossipPull(node, (node + 1) % config_.num_nodes);
        }
        queue_.RunToCompletion();
      }
    }
  }

  const auto epochs = nodes_[0]->ConfirmedEpochs();
  stats_.confirmed_epochs = epochs.size();

  // kConsensus determinism checkpoint: node 0's confirmed epochs — pivot
  // heights and per-epoch block order the execution pipeline consumes.
  if (analysis::DetCheckpointRecorder& det =
          analysis::DetCheckpointRecorder::Global();
      det.enabled()) {
    det.BeginEpoch(0, "treegraph-sim");
    std::string canonical;
    canonical.reserve(40 + epochs.size() * 96);
    char line[96];
    std::snprintf(line, sizeof(line), "consensus sim=treegraph epochs=%zu\n",
                  epochs.size());
    canonical += line;
    for (std::size_t i = 0; i < epochs.size(); ++i) {
      std::snprintf(line, sizeof(line), "E %zu pivot_h=%" PRIu64 " blocks=%zu\n",
                    i, static_cast<std::uint64_t>(epochs[i].pivot_height),
                    epochs[i].blocks.size());
      canonical += line;
      for (const TGBlock* block : epochs[i].blocks) {
        canonical += "c ";
        canonical += block->hash.ToHex();
        canonical += '\n';
      }
    }
    det.Record(analysis::DetStage::kConsensus, canonical);
  }

  std::size_t total_blocks = 0;
  auto& registry = obs::Registry();
  const obs::Labels sim_label = {{"sim", "treegraph"}};
  obs::BucketHistogram* epoch_blocks = registry.GetHistogram(
      "nezha_consensus_epoch_blocks", sim_label, obs::DefaultSizeBounds());
  // Assembly lag: how long an epoch stays open — the spread between its
  // earliest and latest mined block (ms of simulated time).
  obs::BucketHistogram* assembly_lag = registry.GetHistogram(
      "nezha_consensus_epoch_assembly_lag_ms", sim_label,
      obs::DefaultLatencyBoundsMs());
  for (const TGEpoch& epoch : epochs) {
    total_blocks += epoch.blocks.size();
    stats_.max_epoch_size = std::max(
        stats_.max_epoch_size, static_cast<double>(epoch.blocks.size()));
    epoch_blocks->Observe(static_cast<double>(epoch.blocks.size()));
    double first = std::numeric_limits<double>::infinity();
    double last = -std::numeric_limits<double>::infinity();
    for (const TGBlock* block : epoch.blocks) {
      const auto it = mined_at_ms_.find(block->mine_counter);
      if (it == mined_at_ms_.end()) continue;
      first = std::min(first, it->second);
      last = std::max(last, it->second);
    }
    if (last >= first) assembly_lag->Observe(last - first);
  }
  stats_.confirmed_blocks = total_blocks;
  stats_.mean_epoch_size =
      epochs.empty() ? 0
                     : static_cast<double>(total_blocks) /
                           static_cast<double>(epochs.size());
  registry.GetGauge("nezha_consensus_confirmed_blocks", sim_label)
      ->Set(static_cast<std::int64_t>(total_blocks));
  registry.GetGauge("nezha_consensus_confirmed_epochs", sim_label)
      ->Set(static_cast<std::int64_t>(epochs.size()));
  if (stats_.gossip_transfers > 0) {
    registry.GetCounter("nezha_consensus_gossip_transfers_total", sim_label)
        ->Inc(stats_.gossip_transfers);
  }
}

}  // namespace nezha
