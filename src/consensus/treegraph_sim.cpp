#include "consensus/treegraph_sim.h"

#include <cmath>
#include <limits>

#include "obs/metrics.h"

namespace nezha {

TreeGraphSimulation::TreeGraphSimulation(const TreeGraphSimConfig& config,
                                         TxSource tx_source)
    : config_(config), tx_source_(std::move(tx_source)), rng_(config.seed) {
  nodes_.reserve(config.num_nodes);
  for (NodeId id = 0; id < config.num_nodes; ++id) {
    nodes_.push_back(
        std::make_unique<TreeGraphView>(id, config.confirm_depth));
  }
}

void TreeGraphSimulation::ScheduleNextMiningEvent() {
  const double u = rng_.NextDouble();
  const double dt = -std::log(1.0 - u) * config_.mean_block_interval_ms;
  const double when = queue_.Now() + dt;
  if (when > config_.duration_ms) return;
  queue_.ScheduleAt(when, [this] {
    MineBlock();
    ScheduleNextMiningEvent();
  });
}

void TreeGraphSimulation::MineBlock() {
  const auto miner = static_cast<NodeId>(rng_.Below(config_.num_nodes));
  std::vector<Transaction> txs;
  if (tx_source_) txs = tx_source_(miner);

  TGBlock block = nodes_[miner]->PrepareBlock(mine_counter_++, std::move(txs));
  block.Seal();
  ++stats_.blocks_mined;
  mined_at_ms_[block.mine_counter] = queue_.Now();
  obs::Registry()
      .GetCounter("nezha_consensus_blocks_total", {{"sim", "treegraph"}})
      ->Inc();

  (void)nodes_[miner]->OnBlock(block);
  for (NodeId peer = 0; peer < config_.num_nodes; ++peer) {
    if (peer == miner) continue;
    const double delay =
        config_.base_latency_ms + rng_.NextDouble() * config_.jitter_ms;
    queue_.ScheduleAfter(delay, [this, block, peer] {
      (void)nodes_[peer]->OnBlock(block);
    });
  }
}

void TreeGraphSimulation::Run() {
  ScheduleNextMiningEvent();
  queue_.RunUntil(config_.duration_ms);
  queue_.RunToCompletion();

  const auto epochs = nodes_[0]->ConfirmedEpochs();
  stats_.confirmed_epochs = epochs.size();
  std::size_t total_blocks = 0;
  auto& registry = obs::Registry();
  const obs::Labels sim_label = {{"sim", "treegraph"}};
  obs::BucketHistogram* epoch_blocks = registry.GetHistogram(
      "nezha_consensus_epoch_blocks", sim_label, obs::DefaultSizeBounds());
  // Assembly lag: how long an epoch stays open — the spread between its
  // earliest and latest mined block (ms of simulated time).
  obs::BucketHistogram* assembly_lag = registry.GetHistogram(
      "nezha_consensus_epoch_assembly_lag_ms", sim_label,
      obs::DefaultLatencyBoundsMs());
  for (const TGEpoch& epoch : epochs) {
    total_blocks += epoch.blocks.size();
    stats_.max_epoch_size = std::max(
        stats_.max_epoch_size, static_cast<double>(epoch.blocks.size()));
    epoch_blocks->Observe(static_cast<double>(epoch.blocks.size()));
    double first = std::numeric_limits<double>::infinity();
    double last = -std::numeric_limits<double>::infinity();
    for (const TGBlock* block : epoch.blocks) {
      const auto it = mined_at_ms_.find(block->mine_counter);
      if (it == mined_at_ms_.end()) continue;
      first = std::min(first, it->second);
      last = std::max(last, it->second);
    }
    if (last >= first) assembly_lag->Observe(last - first);
  }
  stats_.confirmed_blocks = total_blocks;
  stats_.mean_epoch_size =
      epochs.empty() ? 0
                     : static_cast<double>(total_blocks) /
                           static_cast<double>(epochs.size());
  registry.GetGauge("nezha_consensus_confirmed_blocks", sim_label)
      ->Set(static_cast<std::int64_t>(total_blocks));
  registry.GetGauge("nezha_consensus_confirmed_epochs", sim_label)
      ->Set(static_cast<std::int64_t>(epochs.size()));
}

}  // namespace nezha
