#include "consensus/treegraph_sim.h"

#include <cmath>

namespace nezha {

TreeGraphSimulation::TreeGraphSimulation(const TreeGraphSimConfig& config,
                                         TxSource tx_source)
    : config_(config), tx_source_(std::move(tx_source)), rng_(config.seed) {
  nodes_.reserve(config.num_nodes);
  for (NodeId id = 0; id < config.num_nodes; ++id) {
    nodes_.push_back(
        std::make_unique<TreeGraphView>(id, config.confirm_depth));
  }
}

void TreeGraphSimulation::ScheduleNextMiningEvent() {
  const double u = rng_.NextDouble();
  const double dt = -std::log(1.0 - u) * config_.mean_block_interval_ms;
  const double when = queue_.Now() + dt;
  if (when > config_.duration_ms) return;
  queue_.ScheduleAt(when, [this] {
    MineBlock();
    ScheduleNextMiningEvent();
  });
}

void TreeGraphSimulation::MineBlock() {
  const auto miner = static_cast<NodeId>(rng_.Below(config_.num_nodes));
  std::vector<Transaction> txs;
  if (tx_source_) txs = tx_source_(miner);

  TGBlock block = nodes_[miner]->PrepareBlock(mine_counter_++, std::move(txs));
  block.Seal();
  ++stats_.blocks_mined;

  (void)nodes_[miner]->OnBlock(block);
  for (NodeId peer = 0; peer < config_.num_nodes; ++peer) {
    if (peer == miner) continue;
    const double delay =
        config_.base_latency_ms + rng_.NextDouble() * config_.jitter_ms;
    queue_.ScheduleAfter(delay, [this, block, peer] {
      (void)nodes_[peer]->OnBlock(block);
    });
  }
}

void TreeGraphSimulation::Run() {
  ScheduleNextMiningEvent();
  queue_.RunUntil(config_.duration_ms);
  queue_.RunToCompletion();

  const auto epochs = nodes_[0]->ConfirmedEpochs();
  stats_.confirmed_epochs = epochs.size();
  std::size_t total_blocks = 0;
  for (const TGEpoch& epoch : epochs) {
    total_blocks += epoch.blocks.size();
    stats_.max_epoch_size = std::max(
        stats_.max_epoch_size, static_cast<double>(epoch.blocks.size()));
  }
  stats_.confirmed_blocks = total_blocks;
  stats_.mean_epoch_size =
      epochs.empty() ? 0
                     : static_cast<double>(total_blocks) /
                           static_cast<double>(epochs.size());
}

}  // namespace nezha
