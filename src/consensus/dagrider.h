// DagRiderView: a round-based BFT DAG in the style of DAG-Rider (Keidar et
// al., PODC 2021) — the third DAG family the paper cites (§II.A lists
// DAG-Rider among the parallel-chain-structured systems).
//
// Structure (simplified to the honest-node deterministic simulation used by
// the other substrates; the ordering logic is the real protocol):
//  * n nodes, f = (n-1)/3; each node emits one VERTEX per round, referencing
//    at least 2f+1 vertices of the previous round (strong edges);
//  * a node may only advance to round r+1 once it holds 2f+1 vertices of
//    round r — rounds are therefore self-clocking;
//  * waves are 4 rounds; the wave's LEADER vertex is the first-round vertex
//    of a node drawn by a shared coin (here: a seeded hash of the wave
//    number — all replicas agree);
//  * when a node's last-round vertices give >= 2f+1 of them a path to the
//    wave's leader vertex, the wave COMMITS: the leader and every vertex in
//    its causal history not yet delivered are appended to the output, in
//    deterministic (round, source) order. Skipped earlier leaders that the
//    committed leader can reach commit first (the protocol's recursive
//    catch-up), so all replicas deliver the same sequence.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/sha256.h"
#include "common/status.h"
#include "common/types.h"
#include "ledger/block.h"
#include "ledger/transaction.h"

namespace nezha {

struct DagVertex {
  // --- broadcast content ---
  NodeId source = 0;
  std::uint64_t round = 0;           ///< rounds start at 1
  std::vector<Hash256> parents;      ///< >= 2f+1 vertices of round-1
  Hash256 tx_root{};
  std::vector<Transaction> txs;

  // --- derived ---
  Hash256 hash{};

  std::string HashPreimage() const;
  void Seal();
};

class DagRiderView {
 public:
  /// num_nodes must satisfy n >= 3f+1 for some f >= 0 (any n >= 1 works;
  /// f = (n-1)/3).
  DagRiderView(NodeId id, std::uint32_t num_nodes);

  NodeId id() const { return id_; }
  std::uint32_t quorum() const { return 2 * f_ + 1; }

  /// The next round this node would emit a vertex for.
  std::uint64_t NextEmitRound() const { return next_emit_round_; }

  /// True when the node may emit its next vertex: round 1, or a quorum of
  /// the previous round is held (rounds are self-clocking).
  bool CanEmit() const;

  /// Builds this node's next vertex (for NextEmitRound()); call only when
  /// CanEmit(). References every known vertex of the previous round
  /// (>= quorum by construction).
  DagVertex PrepareVertex(std::vector<Transaction> txs) const;

  /// Validates and attaches a sealed vertex; buffers it if parents are
  /// missing; advances the local round when a quorum forms; runs the wave
  /// commit rule. Returns the number of vertices attached.
  Result<std::size_t> OnVertex(const DagVertex& vertex);

  bool Knows(const Hash256& hash) const { return vertices_.contains(hash); }

  /// The committed vertex sequence so far (grows append-only; identical
  /// across replicas — the BFT safety property the tests pin).
  const std::vector<const DagVertex*>& CommittedSequence() const {
    return committed_;
  }

  /// Protocol-defined batch boundaries: one batch per committed wave
  /// anchor (its undelivered causal history). Identical across replicas,
  /// so deferred execution can snapshot per batch deterministically.
  std::size_t NumBatches() const { return batch_offsets_.size(); }
  std::vector<const DagVertex*> Batch(std::size_t i) const {
    const std::size_t begin = i == 0 ? 0 : batch_offsets_[i - 1];
    const std::size_t end = batch_offsets_[i];
    return {committed_.begin() + static_cast<std::ptrdiff_t>(begin),
            committed_.begin() + static_cast<std::ptrdiff_t>(end)};
  }

  /// Leader node of wave w (shared coin; same on every replica).
  static NodeId WaveLeader(std::uint64_t wave, std::uint32_t num_nodes);

  std::size_t NumVertices() const { return vertices_.size(); }
  std::size_t NumOrphans() const;

  /// Every attached vertex, ordered by (round, source) — parents before
  /// children, deterministic. Anti-entropy gossip replays these to a peer
  /// that missed broadcasts.
  std::vector<const DagVertex*> AllVertices() const;

 private:
  Status Attach(const DagVertex& vertex);
  std::optional<Hash256> MissingParent(const DagVertex& vertex) const;
  void TryCommitWaves();

  /// The vertex of `source` at `round`, or nullptr.
  const DagVertex* VertexOf(std::uint64_t round, NodeId source) const;

  /// True if a path of parent edges leads from `from` to `to`.
  bool Reaches(const Hash256& from, const Hash256& to) const;

  /// Commits wave `wave` anchored at `leader`: earlier undecided leaders
  /// reachable from it commit first (the protocol's recursive catch-up);
  /// unreachable ones are skipped for good.
  void CommitWave(std::uint64_t wave, const DagVertex* leader);

  /// Appends `anchor`'s undelivered causal history in deterministic order.
  void DeliverCausalHistory(const DagVertex* anchor);

  NodeId id_;
  std::uint32_t num_nodes_;
  std::uint32_t f_;

  std::unordered_map<Hash256, std::unique_ptr<DagVertex>> vertices_;
  /// Vertices by round; [round][source] -> vertex (rounds from 1).
  std::unordered_map<std::uint64_t, std::vector<const DagVertex*>> rounds_;
  std::unordered_map<Hash256, std::vector<DagVertex>> orphans_;

  std::uint64_t next_emit_round_ = 1;
  std::uint64_t next_wave_ = 0;  ///< first undecided wave
  std::unordered_set<Hash256> delivered_;
  std::vector<const DagVertex*> committed_;
  std::vector<std::size_t> batch_offsets_;  ///< committed_ size per anchor
};

}  // namespace nezha
