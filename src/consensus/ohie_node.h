// OhieNodeView: one consensus node's local view of the k parallel chains.
//
// Responsibilities:
//  * track every received block, with longest-chain fork choice per chain
//    (ties break toward the smaller hash, deterministically);
//  * buffer blocks whose referenced parents have not arrived yet (orphans)
//    and attach them recursively once their dependencies land;
//  * validate derived fields (hash, chain assignment, height, rank,
//    next_rank) instead of trusting the sender;
//  * expose OHIE's confirmed total order: on each chain the blocks buried
//    `confirm_depth` under the tip are partially confirmed; a partially
//    confirmed block is fully confirmed once its rank is below every
//    chain's confirm bar; fully confirmed blocks order by (rank, chain).
#pragma once

#include <map>
#include <optional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "ledger/block.h"
#include "consensus/ohie_types.h"

namespace nezha {

class OhieNodeView {
 public:
  OhieNodeView(NodeId id, ChainId num_chains, std::size_t confirm_depth);

  NodeId id() const { return id_; }
  ChainId num_chains() const { return num_chains_; }

  /// Current best tip of one chain (never null; genesis at worst).
  const OhieBlock* Tip(ChainId chain) const { return tips_[chain]; }

  /// Tip hashes of all chains (the parent references of a new block).
  std::vector<Hash256> TipHashes() const;

  /// Builds an unsealed candidate block extending this view.
  OhieBlock PrepareBlock(std::uint64_t mine_counter,
                         std::vector<Transaction> txs) const;

  /// Validates and attaches a sealed block; recursively attaches any
  /// orphans that were waiting on it. Returns the number of blocks
  /// attached (0 if it was a duplicate / went to the orphan buffer).
  Result<std::size_t> OnBlock(const OhieBlock& block);

  bool Knows(const Hash256& hash) const {
    return blocks_.contains(hash);
  }

  /// The confirm bar: every partially-confirmed block with rank strictly
  /// below this value is fully confirmed. Monotonically non-decreasing as
  /// the view grows.
  std::uint64_t ConfirmBar() const;

  /// Fully confirmed blocks across all chains, ordered by (rank, chain) —
  /// exactly the payload blocks with rank < ConfirmBar(). Genesis blocks
  /// are excluded (they carry no payload).
  std::vector<const OhieBlock*> ConfirmedOrder() const;

  /// Main-chain blocks of one chain, genesis first.
  std::vector<const OhieBlock*> MainChain(ChainId chain) const;

  /// Every attached block (including genesis blocks), ordered by
  /// (height, hash) — parents before children, deterministic. Used by
  /// anti-entropy gossip to offer a peer what it lacks.
  std::vector<const OhieBlock*> AllBlocks() const;

  std::size_t NumBlocks() const { return blocks_.size(); }
  std::size_t NumOrphans() const;

 private:
  /// Validates `block` against its (known) parents and stores it.
  Status Attach(const OhieBlock& block);

  /// First referenced parent hash not yet known, or nullopt.
  std::optional<Hash256> MissingParent(const OhieBlock& block) const;

  NodeId id_;
  ChainId num_chains_;
  std::size_t confirm_depth_;

  std::unordered_map<Hash256, std::unique_ptr<OhieBlock>> blocks_;
  std::vector<const OhieBlock*> tips_;  ///< best tip per chain
  /// Orphans keyed by the missing parent they wait for.
  std::unordered_map<Hash256, std::vector<OhieBlock>> orphans_;
};

}  // namespace nezha
