// Deterministic discrete-event simulation core for the consensus substrate.
//
// Events are ordered by (time, insertion sequence); ties in time resolve by
// insertion order, so a run is fully reproducible from its seed. Time is
// simulated milliseconds (double).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace nezha {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute simulation time `when`. Scheduling into the
  /// past is a logic error (asserted in debug builds); release builds clamp
  /// to Now() so time still never runs backwards.
  void ScheduleAt(double when, Callback fn) {
    assert(when >= now_ && "event scheduled in the past");
    events_.push_back(Event{std::max(when, now_), next_seq_++, std::move(fn)});
    std::push_heap(events_.begin(), events_.end(), Later{});
  }

  /// Schedules `fn` after a delay relative to the current time.
  void ScheduleAfter(double delay, Callback fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  double Now() const { return now_; }
  bool Empty() const { return events_.empty(); }
  std::size_t Pending() const { return events_.size(); }

  /// Runs the next event; returns false when the queue is empty.
  bool Step() {
    if (events_.empty()) return false;
    std::pop_heap(events_.begin(), events_.end(), Later{});
    Event event = std::move(events_.back());
    events_.pop_back();
    now_ = event.time;
    event.fn();
    return true;
  }

  /// Runs events until the queue drains or the horizon is passed. Events
  /// scheduled beyond `horizon` stay queued; Now() never exceeds it.
  void RunUntil(double horizon) {
    while (!events_.empty() && events_.front().time <= horizon) {
      Step();
    }
    now_ = std::max(now_, horizon);
  }

  /// Drains every remaining event.
  void RunToCompletion() {
    while (Step()) {
    }
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback fn;
  };

  /// Heap comparator: a max-heap under "fires later" keeps the earliest
  /// (time, seq) event at the front.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // An explicit binary heap instead of std::priority_queue: top() of a
  // priority_queue is const, forcing a const_cast to move the callback out.
  // With our own vector the extraction is a plain (safe) move.
  std::vector<Event> events_;
  double now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace nezha
