// Deterministic discrete-event simulation core for the consensus substrate.
//
// Events are ordered by (time, insertion sequence); ties in time resolve by
// insertion order, so a run is fully reproducible from its seed. Time is
// simulated milliseconds (double).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace nezha {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute simulation time `when` (>= Now()).
  void ScheduleAt(double when, Callback fn) {
    events_.push(Event{when, next_seq_++, std::move(fn)});
  }

  /// Schedules `fn` after a delay relative to the current time.
  void ScheduleAfter(double delay, Callback fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  double Now() const { return now_; }
  bool Empty() const { return events_.empty(); }
  std::size_t Pending() const { return events_.size(); }

  /// Runs the next event; returns false when the queue is empty.
  bool Step() {
    if (events_.empty()) return false;
    Event event = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = event.time;
    event.fn();
    return true;
  }

  /// Runs events until the queue drains or the horizon is passed. Events
  /// scheduled beyond `horizon` stay queued; Now() never exceeds it.
  void RunUntil(double horizon) {
    while (!events_.empty() && events_.top().time <= horizon) {
      Step();
    }
    now_ = std::max(now_, horizon);
  }

  /// Drains every remaining event.
  void RunToCompletion() {
    while (Step()) {
    }
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback fn;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  double now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace nezha
