#include "common/bytes.h"

namespace nezha {
namespace {

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string ToHex(std::string_view bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

std::string FromHex(std::string_view hex) {
  if (hex.size() % 2 != 0) return {};
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = HexValue(hex[i]);
    const int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) return {};
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

void PutFixed64(std::string& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

std::uint64_t GetFixed64(std::string_view in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<unsigned char>(in[static_cast<std::size_t>(i)]);
  }
  return v;
}

void PutFixed32(std::string& out, std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

std::uint32_t GetFixed32(std::string_view in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | static_cast<unsigned char>(in[static_cast<std::size_t>(i)]);
  }
  return v;
}

void PutVarint64(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

bool GetVarint64(std::string_view in, std::size_t* offset,
                 std::uint64_t* out) {
  std::uint64_t v = 0;
  int shift = 0;
  while (*offset < in.size() && shift <= 63) {
    const auto byte = static_cast<unsigned char>(in[*offset]);
    ++*offset;
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace nezha
