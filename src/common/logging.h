// Minimal leveled logging to stderr. Off by default at DEBUG level; benches
// and examples raise the level explicitly. Thread-safe (single write call
// per message).
#pragma once

#include <sstream>
#include <string>

namespace nezha {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Writes one formatted line: "[LEVEL] message\n".
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace nezha

#define NEZHA_LOG(level)                                     \
  if (static_cast<int>(::nezha::LogLevel::level) <           \
      static_cast<int>(::nezha::GetLogLevel())) {            \
  } else                                                     \
    ::nezha::internal::LogLine(::nezha::LogLevel::level)
