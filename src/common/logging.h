// Minimal leveled logging to stderr. Off by default at DEBUG level; benches
// and examples raise the level explicitly. Thread-safe (single write call
// per message). Each line carries a wall-clock timestamp and the dense
// per-process thread id (obs::CurrentThreadId):
//   [2026-08-05 12:00:00.123] [INFO] [t3] message
#pragma once

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace nezha {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Writes one formatted line: "[timestamp] [LEVEL] [tid] message\n".
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace nezha

#define NEZHA_LOG(level)                                     \
  if (static_cast<int>(::nezha::LogLevel::level) <           \
      static_cast<int>(::nezha::GetLogLevel())) {            \
  } else                                                     \
    ::nezha::internal::LogLine(::nezha::LogLevel::level)

// Rate-limited logging: emits occurrence 1, n+1, 2n+1, ... of this call
// site (per-site atomic counter), so per-transaction logging cannot swamp a
// bench. Usage: NEZHA_LOG_EVERY_N(kInfo, 1000) << "committed " << n;
#define NEZHA_LOG_EVERY_N(level, n)                                          \
  if (bool nezha_log_hit = []() {                                            \
        static ::std::atomic<::std::uint64_t> nezha_log_count{0};            \
        return nezha_log_count.fetch_add(1, ::std::memory_order_relaxed) %   \
                   static_cast<::std::uint64_t>(n) ==                        \
               0;                                                            \
      }();                                                                   \
      !nezha_log_hit) {                                                      \
  } else                                                                     \
    NEZHA_LOG(level)
