// Deterministic, fast pseudo-random generation for workloads and simulators.
//
// All randomized components of the library (workload generation, block
// assembly, Monte-Carlo conflict estimation) take an explicit Rng so that
// every experiment is reproducible from a single seed.
#pragma once

#include <cstdint>

namespace nezha {

/// SplitMix64: used for seeding and as a cheap standalone generator.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed'c0de'1234'5678ull) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() { return Next(); }

  std::uint64_t Next() {
    const std::uint64_t result = RotL(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = RotL(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t Below(std::uint64_t bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = Next();
      const unsigned __int128 m =
          static_cast<unsigned __int128>(r) * bound;
      if (static_cast<std::uint64_t>(m) >= threshold) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t Between(std::uint64_t lo, std::uint64_t hi) {
    return lo + Below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    // 53 high bits -> [0,1) with full double precision.
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Derives an independent child generator (for per-thread streams).
  Rng Fork() { return Rng(Next() ^ 0xa5a5'a5a5'dead'beefull); }

 private:
  static std::uint64_t RotL(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace nezha
