#include "common/sha256.h"

#include <atomic>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define NEZHA_SHA256_X86 1
#include <immintrin.h>
#endif

namespace nezha {
namespace {

std::atomic<bool> g_force_scalar{false};

#ifdef NEZHA_SHA256_X86

bool CpuHasShaNi() {
  static const bool kHasShaNi = __builtin_cpu_supports("sha") &&
                                __builtin_cpu_supports("sse4.1") &&
                                __builtin_cpu_supports("ssse3");
  return kHasShaNi;
}

/// SHA-256 compression over `blocks` consecutive 64-byte blocks using the
/// x86 SHA extensions (FIPS 180-4, byte-identical to the portable path).
/// The round-constant pairs below pack kRoundConstants[i..i+3] into one
/// 128-bit lane per 4-round step.
__attribute__((target("sha,sse4.1,ssse3"))) void ProcessBlocksShaNi(
    std::uint32_t* state, const std::uint8_t* data, std::size_t blocks) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bll, 0x0405060700010203ll);

  // state[] is {a,b,c,d,e,f,g,h}; the sha256rnds2 instruction wants the
  // (ABEF, CDGH) arrangement.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);    // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);         // CDGH

  while (blocks-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    __m128i msg, msg0, msg1, msg2, msg3;

    // Rounds 0-3.
    msg = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0));
    msg0 = _mm_shuffle_epi8(msg, kShuffle);
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0xe9b5dba5b5c0fbcfll, 0x71374491428a2f98ll));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 4-7.
    msg1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16));
    msg1 = _mm_shuffle_epi8(msg1, kShuffle);
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0xab1c5ed5923f82a4ll, 0x59f111f13956c25bll));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11.
    msg2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32));
    msg2 = _mm_shuffle_epi8(msg2, kShuffle);
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0x550c7dc3243185bell, 0x12835b01d807aa98ll));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-15.
    msg3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48));
    msg3 = _mm_shuffle_epi8(msg3, kShuffle);
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0xc19bf1749bdc06a7ll, 0x80deb1fe72be5d74ll));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-19.
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0x240ca1cc0fc19dc6ll, 0xefbe4786e49b69c1ll));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 20-23.
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x76f988da5cb0a9dcll, 0x4a7484aa2de92c6fll));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 24-27.
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0xbf597fc7b00327c8ll, 0xa831c66d983e5152ll));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 28-31.
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0x1429296706ca6351ll, 0xd5a79147c6e00bf3ll));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 32-35.
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0x53380d134d2c6dfcll, 0x2e1b213827b70a85ll));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 36-39.
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x92722c8581c2c92ell, 0x766a0abb650a7354ll));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 40-43.
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0xc76c51a3c24b8b70ll, 0xa81a664ba2bfe8a1ll));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 44-47.
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0x106aa070f40e3585ll, 0xd6990624d192e819ll));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 48-51.
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0x34b0bcb52748774cll, 0x1e376c0819a4c116ll));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 52-55.
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x682e6ff35b9cca4fll, 0x4ed8aa4a391c0cb3ll));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 56-59.
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0x8cc7020884c87814ll, 0x78a5636f748f82eell));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 60-63.
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0xc67178f2bef9a3f7ll, 0xa4506ceb90befffall));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    data += 64;
  }

  // (ABEF, CDGH) back to {a..h}.
  tmp = _mm_shuffle_epi32(state0, 0x1B);       // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);    // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);  // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);     // HGFE

  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), state1);
}

#endif  // NEZHA_SHA256_X86

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline std::uint32_t RotR(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

}  // namespace

std::string Hash256::ToHex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

bool Hash256::IsZero() const {
  for (std::uint8_t b : bytes) {
    if (b != 0) return false;
  }
  return true;
}

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
             0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19} {}

Sha256& Sha256::Update(std::span<const std::uint8_t> data) {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset += take;
    if (buffer_len_ == 64) {
      ProcessBlocks(buffer_.data(), 1);
      buffer_len_ = 0;
    }
  }
  const std::size_t full_blocks = (data.size() - offset) / 64;
  if (full_blocks > 0) {
    ProcessBlocks(data.data() + offset, full_blocks);
    offset += full_blocks * 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
  return *this;
}

Sha256& Sha256::Update(std::string_view data) {
  return Update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Hash256 Sha256::Finish() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  // Append 0x80 then zero-pad to 56 mod 64, then the 64-bit big-endian length.
  const std::uint8_t pad_byte = 0x80;
  Update(std::span<const std::uint8_t>(&pad_byte, 1));
  const std::uint8_t zero = 0;
  while (buffer_len_ != 56) {
    Update(std::span<const std::uint8_t>(&zero, 1));
  }
  std::array<std::uint8_t, 8> len_bytes;
  for (int i = 0; i < 8; ++i) {
    len_bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  // Bypass Update's length accounting for the final length field.
  total_bytes_ -= buffer_len_;  // irrelevant now, kept consistent
  std::memcpy(buffer_.data() + buffer_len_, len_bytes.data(), 8);
  ProcessBlocks(buffer_.data(), 1);
  buffer_len_ = 0;

  Hash256 out;
  for (int i = 0; i < 8; ++i) {
    const std::uint32_t w = state_[static_cast<std::size_t>(i)];
    out.bytes[static_cast<std::size_t>(i * 4 + 0)] =
        static_cast<std::uint8_t>(w >> 24);
    out.bytes[static_cast<std::size_t>(i * 4 + 1)] =
        static_cast<std::uint8_t>(w >> 16);
    out.bytes[static_cast<std::size_t>(i * 4 + 2)] =
        static_cast<std::uint8_t>(w >> 8);
    out.bytes[static_cast<std::size_t>(i * 4 + 3)] =
        static_cast<std::uint8_t>(w);
  }
  return out;
}

bool Sha256::HardwareAccelerated() {
#ifdef NEZHA_SHA256_X86
  return CpuHasShaNi() && !g_force_scalar.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

void Sha256::ForceScalarForTest(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

void Sha256::ProcessBlocks(const std::uint8_t* data, std::size_t blocks) {
#ifdef NEZHA_SHA256_X86
  if (HardwareAccelerated()) {
    ProcessBlocksShaNi(state_.data(), data, blocks);
    return;
  }
#endif
  for (std::size_t i = 0; i < blocks; ++i) ProcessBlock(data + i * 64);
}

void Sha256::ProcessBlock(const std::uint8_t* block) {
  std::array<std::uint32_t, 64> w;
  for (int i = 0; i < 16; ++i) {
    w[static_cast<std::size_t>(i)] =
        (static_cast<std::uint32_t>(block[i * 4]) << 24) |
        (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
        (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
        static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (std::size_t i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        RotR(w[i - 15], 7) ^ RotR(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        RotR(w[i - 2], 17) ^ RotR(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

  for (std::size_t i = 0; i < 64; ++i) {
    const std::uint32_t s1 = RotR(e, 6) ^ RotR(e, 11) ^ RotR(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
    const std::uint32_t s0 = RotR(a, 2) ^ RotR(a, 13) ^ RotR(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

Hash256 Sha256::Digest(std::string_view data) {
  Sha256 hasher;
  hasher.Update(data);
  return hasher.Finish();
}

Hash256 Sha256::Digest(std::span<const std::uint8_t> data) {
  Sha256 hasher;
  hasher.Update(data);
  return hasher.Finish();
}

}  // namespace nezha
