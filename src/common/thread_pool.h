// Fixed-size worker pool used by the concurrent execution and commitment
// phases. Tasks are submitted as std::function<void()>; ParallelFor provides
// a blocking data-parallel loop with static chunking (deterministic split).
//
// Nested submission: a task running ON a pool worker must not block on
// futures of sub-tasks queued to the same pool — with every worker blocked
// in such a wait, nothing drains the queue and the pool deadlocks. All the
// blocking loops below (ParallelFor, ParallelForChunked, ParallelForGroups)
// therefore detect that the calling thread is one of this pool's workers
// and execute the whole range inline instead of submitting
// (nezha_threadpool_inline_fallbacks_total counts these).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <span>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace nezha {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; 0 means hardware concurrency).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; returns a future for completion/exception propagation.
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(i) for i in [begin, end) across the pool, blocking until all
  /// iterations complete. Iterations are split into contiguous chunks, one
  /// batch per worker, so the partition is deterministic for a given pool
  /// size. Exceptions from fn are rethrown (first one wins).
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn);

  /// Like ParallelFor but hands each worker its chunk [chunk_begin,
  /// chunk_end) plus a stable worker slot index, letting callers keep
  /// per-worker scratch state without false sharing.
  void ParallelForChunked(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t chunk_begin, std::size_t chunk_end,
                               std::size_t worker_slot)>& fn);

  /// Runs fn(group, item) for every item of every group, with a barrier
  /// between consecutive groups: group g starts only after every item of
  /// group g-1 returned (the shape of Nezha's sequence-number commit
  /// groups). Items within one group run in parallel; groups of one item
  /// run inline with no dispatch overhead. When called from one of this
  /// pool's own worker threads everything executes inline on the caller
  /// (see the nested-submission note above), so executors may safely drive
  /// ParallelForGroups from tasks already running on the pool.
  /// Exceptions from fn abort the remaining groups and are rethrown.
  void ParallelForGroups(
      std::span<const std::size_t> group_sizes,
      const std::function<void(std::size_t group, std::size_t item)>& fn);

  /// True when the calling thread is one of this pool's workers (the
  /// condition under which the blocking loops fall back to inline
  /// execution).
  bool OnWorkerThread() const;

 private:
  /// The queued unit is a packaged task whose closure already carries the
  /// submit-time context (enqueue timestamp, submitter's pipeline stage)
  /// and performs its own profiler stamping — the sample is recorded
  /// before the task's future becomes ready, so a driver that joins a
  /// ParallelFor and immediately closes the profiling window still sees
  /// every sample (see Submit).
  struct QueuedTask {
    std::packaged_task<void()> task;
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::queue<QueuedTask> tasks_ GUARDED_BY(mutex_);
  /// Waits on the annotated Mutex directly (it is BasicLockable).
  std::condition_variable_any cv_;
  bool stopping_ GUARDED_BY(mutex_) = false;

  // Registry instrumentation, shared across all pools in the process
  // (docs/OBSERVABILITY.md). Pointers are registry-owned and stable.
  obs::Gauge* queue_depth_;
  obs::Counter* tasks_total_;
  obs::Counter* busy_us_total_;
  obs::Counter* inline_fallbacks_total_;
  obs::BucketHistogram* task_wait_us_;
  obs::BucketHistogram* task_run_us_;
};

}  // namespace nezha
