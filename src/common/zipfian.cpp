#include "common/zipfian.h"

#include <cassert>
#include <cmath>

namespace nezha {

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double skew)
    : n_(n), theta_(skew) {
  assert(n > 0);
  assert(skew >= 0.0);
  if (theta_ == 0.0) return;  // uniform fast path
  // theta == 1 makes alpha blow up; nudge as is conventional.
  if (theta_ == 1.0) theta_ = 0.99999;
  zetan_ = Zeta(n_, theta_);
  const double zeta2 = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
  half_pow_theta_ = std::pow(0.5, theta_);
}

double ZipfianGenerator::Zeta(std::uint64_t n, double theta) {
  double sum = 0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

std::uint64_t ZipfianGenerator::Next(Rng& rng) {
  if (theta_ == 0.0) return rng.Below(n_);
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + half_pow_theta_) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

double ZipfianGenerator::ProbabilityOfRank(std::uint64_t k) const {
  assert(k < n_);
  if (theta_ == 0.0) return 1.0 / static_cast<double>(n_);
  return 1.0 / (std::pow(static_cast<double>(k + 1), theta_) * zetan_);
}

}  // namespace nezha
