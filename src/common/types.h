// Core identifier types shared across the Nezha library.
//
// The concurrency-control layer reasons about *addresses* (state cells that
// transactions read and write), *transactions* (identified by their position
// in the epoch's deterministic block order), and *sequence numbers* (the
// Lamport-style commit ranks produced by hierarchical sorting).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace nezha {

/// Index of a transaction within one epoch's batch. The paper orders
/// transactions by subscript (T_1 < T_2 < ...); we use the deterministic
/// position of the transaction in the epoch's block order.
using TxIndex = std::uint32_t;

/// Sentinel for "no transaction".
inline constexpr TxIndex kInvalidTx = std::numeric_limits<TxIndex>::max();

/// Sequence number assigned by hierarchical sorting. Transactions sharing a
/// sequence number commit concurrently. 0 means "unassigned".
using SeqNum = std::uint32_t;
inline constexpr SeqNum kUnassignedSeq = 0;

/// Chain / block / epoch coordinates in the DAG ledger, and consensus
/// node identities.
using NodeId = std::uint32_t;
using ChainId = std::uint32_t;
using BlockHeight = std::uint64_t;
using EpochId = std::uint64_t;

/// A state address: one cell of the account-based state (e.g. the savings or
/// checking balance of one account). Strong typedef so addresses cannot be
/// confused with transaction indices or raw integers.
struct Address {
  std::uint64_t value = 0;

  constexpr Address() = default;
  constexpr explicit Address(std::uint64_t v) : value(v) {}

  friend constexpr bool operator==(Address a, Address b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(Address a, Address b) {
    return a.value != b.value;
  }
  friend constexpr bool operator<(Address a, Address b) {
    return a.value < b.value;
  }
  friend constexpr bool operator>(Address a, Address b) {
    return a.value > b.value;
  }
  friend constexpr bool operator<=(Address a, Address b) {
    return a.value <= b.value;
  }
  friend constexpr bool operator>=(Address a, Address b) {
    return a.value >= b.value;
  }
};

/// Printable form, e.g. "A17".
std::string ToString(Address a);

}  // namespace nezha

template <>
struct std::hash<nezha::Address> {
  std::size_t operator()(nezha::Address a) const noexcept {
    // SplitMix64 finalizer: cheap, well-distributed for sequential ids.
    std::uint64_t x = a.value + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};
