// Streaming summary statistics and percentile estimation for benchmarks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace nezha {

/// Collects samples (e.g. latencies in microseconds) and reports
/// mean / min / max / percentiles.
///
/// Two storage modes:
///  * raw (default) — every sample is kept; percentiles are exact.
///    Call Reserve() up front for large runs to avoid regrowth.
///  * streaming — EnableStreaming(lo, hi, buckets) switches to log-spaced
///    bucket counts: O(buckets) memory no matter how many samples, and
///    Percentile() interpolates inside the bucket instead of sorting a
///    raw vector (million-sample bench runs stay flat and never re-sort).
///    Samples already collected are folded into the buckets.
class Histogram {
 public:
  void Add(double value);

  void Merge(const Histogram& other);

  void Clear();

  /// Pre-allocates raw-sample storage (no-op in streaming mode).
  void Reserve(std::size_t n) {
    if (!streaming_) samples_.reserve(n);
  }

  /// Switches to streaming bucketed mode with `num_buckets` log-spaced
  /// buckets covering [lo, hi] (values outside clamp to the edge buckets).
  /// Requires 0 < lo < hi. Existing raw samples are folded in and freed.
  void EnableStreaming(double lo, double hi, std::size_t num_buckets = 128);

  bool streaming() const { return streaming_; }

  std::size_t Count() const { return streaming_ ? count_ : samples_.size(); }

  double Mean() const {
    const std::size_t n = Count();
    if (n == 0) return 0;
    if (streaming_) return sum_ / static_cast<double>(n);
    double sum = 0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(n);
  }

  double Min() const {
    if (Count() == 0) return 0;
    if (streaming_) return min_;
    return *std::min_element(samples_.begin(), samples_.end());
  }

  double Max() const {
    if (Count() == 0) return 0;
    if (streaming_) return max_;
    return *std::max_element(samples_.begin(), samples_.end());
  }

  /// Percentile in [0, 100]: nearest-rank with interpolation on the sorted
  /// raw samples; bucket-interpolated (approximate) in streaming mode.
  double Percentile(double p);

  double Median() { return Percentile(50); }
  double P99() { return Percentile(99); }

  /// "n=100 mean=1.2 p50=1.1 p99=3.4 max=5.0"
  std::string Summary();

 private:
  void EnsureSorted() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  /// Bucket index for a value in streaming mode (clamped).
  std::size_t BucketOf(double value) const;
  /// Representative lower/upper value of one bucket.
  double BucketLow(std::size_t bucket) const;
  double BucketHigh(std::size_t bucket) const;

  std::vector<double> samples_;
  bool sorted_ = false;

  // Streaming state.
  bool streaming_ = false;
  double lo_ = 0;
  double hi_ = 0;
  double log_lo_ = 0;
  double log_step_ = 0;  ///< log-width of one bucket
  std::vector<std::uint64_t> buckets_;
  std::size_t count_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace nezha
