// Streaming summary statistics and percentile estimation for benchmarks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace nezha {

/// Collects samples (e.g. latencies in microseconds) and reports
/// mean / min / max / percentiles. Stores raw samples; intended for
/// benchmark-scale sample counts (<= millions).
class Histogram {
 public:
  void Add(double value) {
    samples_.push_back(value);
    sorted_ = false;
  }

  void Merge(const Histogram& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }

  void Clear() {
    samples_.clear();
    sorted_ = false;
  }

  std::size_t Count() const { return samples_.size(); }

  double Mean() const {
    if (samples_.empty()) return 0;
    double sum = 0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  double Min() const {
    if (samples_.empty()) return 0;
    return *std::min_element(samples_.begin(), samples_.end());
  }

  double Max() const {
    if (samples_.empty()) return 0;
    return *std::max_element(samples_.begin(), samples_.end());
  }

  /// Percentile in [0, 100] by nearest-rank on the sorted samples.
  double Percentile(double p) {
    if (samples_.empty()) return 0;
    EnsureSorted();
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  double Median() { return Percentile(50); }
  double P99() { return Percentile(99); }

  /// "n=100 mean=1.2 p50=1.1 p99=3.4 max=5.0"
  std::string Summary();

 private:
  void EnsureSorted() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::vector<double> samples_;
  bool sorted_ = false;
};

}  // namespace nezha
