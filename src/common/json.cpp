#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace nezha::json {
namespace {

const Value& NullValue() {
  static const Value* kNull = new Value();  // never freed
  return *kNull;
}

void AppendUtf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

/// Recursive-descent parser over a string_view with one position cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Run() {
    Result<Value> value = ParseValue();
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    if (++depth_ > kMaxDepth) return Fail("nesting too deep");
    struct DepthGuard {
      int& depth;
      ~DepthGuard() { --depth; }
    } guard{depth_};

    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      Result<std::string> s = ParseString();
      if (!s.ok()) return s.status();
      return Value(std::move(*s));
    }
    if (ConsumeWord("true")) return Value(true);
    if (ConsumeWord("false")) return Value(false);
    if (ConsumeWord("null")) return Value(nullptr);
    return ParseNumber();
  }

  Result<Value> ParseObject() {
    ++pos_;  // '{'
    Object object;
    SkipWhitespace();
    if (Consume('}')) return Value(std::move(object));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      Result<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      Result<Value> value = ParseValue();
      if (!value.ok()) return value;
      object.emplace_back(std::move(*key), std::move(*value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Value(std::move(object));
      return Fail("expected ',' or '}' in object");
    }
  }

  Result<Value> ParseArray() {
    ++pos_;  // '['
    Array array;
    SkipWhitespace();
    if (Consume(']')) return Value(std::move(array));
    while (true) {
      Result<Value> value = ParseValue();
      if (!value.ok()) return value;
      array.push_back(std::move(*value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Value(std::move(array));
      return Fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) break;
        const char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
            std::uint32_t cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<std::uint32_t>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<std::uint32_t>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<std::uint32_t>(h - 'A' + 10);
              else return Fail("bad hex digit in \\u escape");
            }
            pos_ += 4;
            // Surrogate pair → one code point.
            if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 6 <= text_.size() &&
                text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
              std::uint32_t low = 0;
              bool ok = true;
              for (int i = 0; i < 4; ++i) {
                const char h = text_[pos_ + 2 + static_cast<std::size_t>(i)];
                low <<= 4;
                if (h >= '0' && h <= '9') low |= static_cast<std::uint32_t>(h - '0');
                else if (h >= 'a' && h <= 'f') low |= static_cast<std::uint32_t>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F') low |= static_cast<std::uint32_t>(h - 'A' + 10);
                else { ok = false; break; }
              }
              if (ok && low >= 0xDC00 && low <= 0xDFFF) {
                cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                pos_ += 6;
              }
            }
            AppendUtf8(out, cp);
            break;
          }
          default:
            return Fail("unknown escape character");
        }
        continue;
      }
      out += c;
      ++pos_;
    }
    return Fail("unterminated string");
  }

  Result<Value> ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string literal(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(literal.c_str(), &end);
    if (end != literal.c_str() + literal.size() || !std::isfinite(value)) {
      return Fail("malformed number '" + literal + "'");
    }
    return Value(value);
  }

  static constexpr int kMaxDepth = 128;
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const Value& Value::operator[](std::string_view key) const {
  if (type_ == Type::kObject) {
    for (const auto& [k, v] : object_) {
      if (k == key) return v;
    }
  }
  return NullValue();
}

bool Value::Contains(std::string_view key) const {
  if (type_ != Type::kObject) return false;
  for (const auto& [k, v] : object_) {
    if (k == key) return true;
  }
  return false;
}

Value& Value::Set(std::string key, Value value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Value& Value::Append(Value value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  array_.push_back(std::move(value));
  return *this;
}

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Value::DumpTo(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent) *
                                          static_cast<std::size_t>(depth + 1),
                                      ' ')
                 : "";
  const std::string close_pad =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent) *
                                          static_cast<std::size_t>(depth),
                                      ' ')
                 : "";
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber: {
      // Integers (the common case here) print without an exponent or
      // fraction; everything else uses the shortest digit string that still
      // parses back to the same double.
      char buf[64];
      if (number_ == static_cast<double>(static_cast<std::int64_t>(number_)) &&
          std::abs(number_) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number_));
      } else {
        for (int precision = 1; precision <= 17; ++precision) {
          std::snprintf(buf, sizeof(buf), "%.*g", precision, number_);
          if (std::strtod(buf, nullptr) == number_) break;
        }
      }
      out += buf;
      return;
    }
    case Type::kString:
      out += '"';
      out += Escape(string_);
      out += '"';
      return;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        out += pad;
        array_[i].DumpTo(out, indent, depth + 1);
      }
      out += close_pad;
      out += ']';
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        out += pad;
        out += '"';
        out += Escape(object_[i].first);
        out += "\":";
        if (indent > 0) out += ' ';
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      out += close_pad;
      out += '}';
      return;
    }
  }
}

std::string Value::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

Result<Value> Parse(std::string_view text) { return Parser(text).Run(); }

Result<Value> ParseFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("json: cannot open " + path);
  }
  std::string content;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  return Parse(content);
}

}  // namespace nezha::json
