// Byte-string helpers: hex encoding and fixed-width integer serialization
// used by block hashing, MPT keys, and the KV store.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace nezha {

/// Lowercase hex of arbitrary bytes.
std::string ToHex(std::string_view bytes);

/// Inverse of ToHex; returns empty string on malformed input.
std::string FromHex(std::string_view hex);

/// Appends a big-endian 64-bit integer (8 bytes) to out.
void PutFixed64(std::string& out, std::uint64_t v);

/// Reads a big-endian 64-bit integer from the first 8 bytes of in.
/// Precondition: in.size() >= 8.
std::uint64_t GetFixed64(std::string_view in);

/// Appends a big-endian 32-bit integer (4 bytes) to out.
void PutFixed32(std::string& out, std::uint32_t v);

/// Reads a big-endian 32-bit integer from the first 4 bytes of in.
std::uint32_t GetFixed32(std::string_view in);

/// Varint (LEB128) encoding for compact serialization.
void PutVarint64(std::string& out, std::uint64_t v);

/// Decodes a varint from `in` starting at *offset; advances *offset.
/// Returns false on truncated input.
bool GetVarint64(std::string_view in, std::size_t* offset, std::uint64_t* out);

}  // namespace nezha
