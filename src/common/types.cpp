#include "common/types.h"

namespace nezha {

std::string ToString(Address a) { return "A" + std::to_string(a.value); }

}  // namespace nezha
