// Minimal JSON document model: build, serialize, parse. Exists so the bench
// harness (bench/bench_suite, bench/check_bench_regression) can write and
// re-read machine-readable results without an external dependency, and so
// tools can parse the flight recorder's JSONL dumps.
//
// Scope: the JSON the repo itself produces — objects, arrays, strings,
// finite numbers, booleans, null; UTF-8 passed through verbatim, \uXXXX
// escapes decoded to UTF-8 on parse. Objects keep insertion order on build
// and file order on parse, so Dump() round-trips byte-stable documents.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace nezha::json {

class Value;
using Array = std::vector<Value>;
/// Insertion-ordered object: pairs, with a helper for key lookup.
using Object = std::vector<std::pair<std::string, Value>>;

enum class Type : std::uint8_t {
  kNull = 0,
  kBool,
  kNumber,
  kString,
  kArray,
  kObject,
};

class Value {
 public:
  Value() = default;
  Value(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Value(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Value(double d) : type_(Type::kNumber), number_(d) {}  // NOLINT
  Value(int i) : Value(static_cast<double>(i)) {}  // NOLINT
  Value(std::int64_t i) : Value(static_cast<double>(i)) {}  // NOLINT
  Value(std::uint64_t u) : Value(static_cast<double>(u)) {}  // NOLINT
  Value(unsigned u) : Value(static_cast<double>(u)) {}       // NOLINT
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Value(std::string_view s) : Value(std::string(s)) {}  // NOLINT
  Value(const char* s) : Value(std::string(s)) {}       // NOLINT
  Value(Array a) : type_(Type::kArray), array_(std::move(a)) {}    // NOLINT
  Value(Object o) : type_(Type::kObject), object_(std::move(o)) {}  // NOLINT

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsDouble(double fallback = 0) const {
    return is_number() ? number_ : fallback;
  }
  std::int64_t AsInt(std::int64_t fallback = 0) const {
    return is_number() ? static_cast<std::int64_t>(number_) : fallback;
  }
  const std::string& AsString() const { return string_; }
  const Array& AsArray() const { return array_; }
  const Object& AsObject() const { return object_; }

  /// Object member access; returns a shared null Value when absent or when
  /// this is not an object (so lookups chain safely).
  const Value& operator[](std::string_view key) const;
  bool Contains(std::string_view key) const;

  /// Appends/overwrites an object member (makes this an object if null).
  Value& Set(std::string key, Value value);
  /// Appends an array element (makes this an array if null).
  Value& Append(Value value);

  /// Compact serialization (no whitespace). `indent` > 0 pretty-prints.
  std::string Dump(int indent = 0) const;

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one JSON document (rejecting trailing garbage beyond whitespace).
Result<Value> Parse(std::string_view text);

/// Reads and parses a JSON file.
Result<Value> ParseFile(const std::string& path);

/// Escapes `s` for embedding inside a JSON string literal (no quotes added).
std::string Escape(std::string_view s);

}  // namespace nezha::json
