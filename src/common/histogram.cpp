#include "common/histogram.h"

#include <cstdio>

namespace nezha {

std::string Histogram::Summary() {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.3f p50=%.3f p99=%.3f max=%.3f", Count(), Mean(),
                Median(), P99(), Max());
  return buf;
}

}  // namespace nezha
