#include "common/histogram.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace nezha {

void Histogram::Add(double value) {
  if (!streaming_) {
    samples_.push_back(value);
    sorted_ = false;
    return;
  }
  ++buckets_[BucketOf(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  if (!streaming_ && !other.streaming_) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
    return;
  }
  if (other.streaming_) {
    if (streaming_ && lo_ == other.lo_ && hi_ == other.hi_ &&
        buckets_.size() == other.buckets_.size()) {
      // Identical bucketing: exact merge.
      for (std::size_t i = 0; i < buckets_.size(); ++i) {
        buckets_[i] += other.buckets_[i];
      }
      count_ += other.count_;
      sum_ += other.sum_;
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
      return;
    }
    // Mismatched bucketing (or raw += streaming): fold by bucket midpoint.
    for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
      const double mid =
          0.5 * (other.BucketLow(i) + other.BucketHigh(i));
      for (std::uint64_t k = 0; k < other.buckets_[i]; ++k) Add(mid);
    }
    return;
  }
  // streaming += raw.
  for (double s : other.samples_) Add(s);
}

void Histogram::Clear() {
  samples_.clear();
  sorted_ = false;
  if (streaming_) {
    buckets_.assign(buckets_.size(), 0);
    count_ = 0;
    sum_ = 0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
  }
}

void Histogram::EnableStreaming(double lo, double hi,
                                std::size_t num_buckets) {
  assert(lo > 0 && hi > lo && num_buckets > 0);
  std::vector<double> pending;
  pending.swap(samples_);
  sorted_ = false;

  streaming_ = true;
  lo_ = lo;
  hi_ = hi;
  log_lo_ = std::log(lo);
  log_step_ = (std::log(hi) - log_lo_) / static_cast<double>(num_buckets);
  buckets_.assign(num_buckets, 0);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();

  for (double s : pending) Add(s);
}

std::size_t Histogram::BucketOf(double value) const {
  if (value <= lo_) return 0;
  if (value >= hi_) return buckets_.size() - 1;
  const auto bucket =
      static_cast<std::size_t>((std::log(value) - log_lo_) / log_step_);
  return std::min(bucket, buckets_.size() - 1);
}

double Histogram::BucketLow(std::size_t bucket) const {
  return std::exp(log_lo_ + log_step_ * static_cast<double>(bucket));
}

double Histogram::BucketHigh(std::size_t bucket) const {
  return std::exp(log_lo_ + log_step_ * static_cast<double>(bucket + 1));
}

double Histogram::Percentile(double p) {
  if (Count() == 0) return 0;
  if (!streaming_) {
    EnsureSorted();
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    if (static_cast<double>(cumulative + buckets_[i]) >= target) {
      const double frac =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets_[i]);
      const double v = BucketLow(i) +
                       (BucketHigh(i) - BucketLow(i)) *
                           std::clamp(frac, 0.0, 1.0);
      // Clamp to the observed range so edge buckets report real values.
      return std::clamp(v, min_, max_);
    }
    cumulative += buckets_[i];
  }
  return max_;
}

std::string Histogram::Summary() {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.3f p50=%.3f p99=%.3f max=%.3f", Count(), Mean(),
                Median(), P99(), Max());
  return buf;
}

}  // namespace nezha
