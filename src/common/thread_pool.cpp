#include "common/thread_pool.h"

#include <time.h>

#include <algorithm>
#include <cassert>
#include <exception>

#include "obs/trace.h"

namespace nezha {
namespace {

/// The pool whose WorkerLoop the current thread is running, if any.
thread_local const ThreadPool* tls_worker_pool = nullptr;

/// Profiler stamp around work executed on the CALLING thread — the
/// nested-submission inline fallback and the single-chunk fast paths. The
/// sample is attributed to the caller's own timeline (tid, current stage)
/// so profiles don't under-report nested work; enqueue == start (it never
/// queued). Armed only while an epoch profiling window is open.
struct InlineStamp {
  bool armed = false;
  double start_us = 0;
  double cpu_start_us = 0;
};

InlineStamp BeginInline() {
  InlineStamp stamp;
  if (!obs::Profiler().Sampling()) return stamp;
  stamp.armed = true;
  stamp.cpu_start_us = obs::ThreadCpuUs();
  stamp.start_us = obs::PhaseTracer::NowUs();
  return stamp;
}

void FinishInline(const InlineStamp& stamp) {
  if (!stamp.armed) return;
  obs::TaskSample sample;
  sample.stage = obs::CurrentStage();
  sample.window = obs::CurrentProfileWindow();
  sample.tid = obs::CurrentThreadId();
  sample.enqueue_us = stamp.start_us;
  sample.start_us = stamp.start_us;
  sample.finish_us = obs::PhaseTracer::NowUs();
  sample.cpu_us = obs::ThreadCpuUs() - stamp.cpu_start_us;
  sample.inlined = true;
  obs::Profiler().RecordTask(sample);
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  auto& registry = obs::Registry();
  queue_depth_ = registry.GetGauge("nezha_threadpool_queue_depth");
  tasks_total_ = registry.GetCounter("nezha_threadpool_tasks_total");
  busy_us_total_ = registry.GetCounter("nezha_threadpool_busy_us_total");
  inline_fallbacks_total_ =
      registry.GetCounter("nezha_threadpool_inline_fallbacks_total");
  task_wait_us_ = registry.GetHistogram("nezha_threadpool_task_wait_us");
  task_run_us_ = registry.GetHistogram("nezha_threadpool_task_run_us");

  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  registry.GetGauge("nezha_threadpool_workers")
      ->Add(static_cast<std::int64_t>(num_threads));
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] {
      obs::SetThreadName("pool-worker-" + std::to_string(i));
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  obs::Registry()
      .GetGauge("nezha_threadpool_workers")
      ->Add(-static_cast<std::int64_t>(workers_.size()));
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  const double enqueue_us = obs::PhaseTracer::NowUs();
  const obs::StageId stage = obs::CurrentStage();
  const obs::ProfileWindowId window = obs::CurrentProfileWindow();
  // Profiler stamps (per-worker timelines, docs/OBSERVABILITY.md) wrap the
  // user's function INSIDE the packaged task: the sample must be recorded
  // before the task's future becomes ready, or a driver thread that joins
  // a ParallelFor and immediately closes the profiling window races the
  // final sample away — and the last task to finish is the straggler, the
  // one sample the epoch profile cannot afford to lose. One Sampling()
  // load decides whether the task pays for any clock reads; the
  // thread-CPU reads stay inline (not routed through obs) so the whole
  // stamp cost is visible — and allowlisted — right here.
  auto run = [this, task = std::move(task), enqueue_us, stage, window]() {
    const bool sampling = obs::Profiler().Sampling();
    struct timespec cpu_begin {};
    if (sampling) clock_gettime(CLOCK_THREAD_CPUTIME_ID, &cpu_begin);
    const double start_us = obs::PhaseTracer::NowUs();
    task_wait_us_->Observe(start_us - enqueue_us);
    std::exception_ptr error;
    {
      // Re-enter the submitter's stage and profile window so nested
      // submissions inherit them and the sample below lands on the right
      // stage in the right epoch's window.
      obs::StageScope scope(stage);
      obs::ProfileWindowScope window_scope(window);
      try {
        task();
      } catch (...) {
        error = std::current_exception();
      }
    }
    const double finish_us = obs::PhaseTracer::NowUs();
    const double run_us = finish_us - start_us;
    task_run_us_->Observe(run_us);
    busy_us_total_->Inc(static_cast<std::uint64_t>(run_us));
    if (sampling) {
      struct timespec cpu_end {};
      clock_gettime(CLOCK_THREAD_CPUTIME_ID, &cpu_end);
      obs::TaskSample sample;
      sample.stage = stage;
      sample.window = window;
      sample.tid = obs::CurrentThreadId();
      sample.enqueue_us = enqueue_us;
      sample.start_us = start_us;
      sample.finish_us = finish_us;
      sample.cpu_us =
          (static_cast<double>(cpu_end.tv_sec - cpu_begin.tv_sec)) * 1e6 +
          (static_cast<double>(cpu_end.tv_nsec - cpu_begin.tv_nsec)) * 1e-3;
      obs::Profiler().RecordTask(sample);
    }
    // Rethrow inside the packaged task so the caller's future still
    // carries the user task's exception.
    if (error) std::rethrow_exception(error);
  };
  QueuedTask queued{std::packaged_task<void()>(std::move(run))};
  std::future<void> fut = queued.task.get_future();
  {
    MutexLock lock(mutex_);
    assert(!stopping_);
    tasks_.push(std::move(queued));
  }
  tasks_total_->Inc();
  queue_depth_->Add(1);
  cv_.notify_one();
  return fut;
}

bool ThreadPool::OnWorkerThread() const { return tls_worker_pool == this; }

void ThreadPool::WorkerLoop() {
  tls_worker_pool = this;
  for (;;) {
    QueuedTask queued;
    {
      MutexLock lock(mutex_);
      // Open-coded wait keeps the condition reads inside this function,
      // where the analysis can see the mutex is held (a predicate lambda
      // cannot carry a REQUIRES annotation).
      while (!stopping_ && tasks_.empty()) cv_.wait(mutex_);
      if (stopping_ && tasks_.empty()) return;
      queued = std::move(tasks_.front());
      tasks_.pop();
    }
    queue_depth_->Add(-1);
    // All metric/profiler stamping lives inside the packaged task (see
    // Submit); user exceptions are captured in its future.
    queued.task();
  }
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn) {
  ParallelForChunked(begin, end,
                     [&fn](std::size_t lo, std::size_t hi, std::size_t) {
                       for (std::size_t i = lo; i < hi; ++i) fn(i);
                     });
}

void ThreadPool::ParallelForChunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  if (OnWorkerThread()) {
    // Nested submission from a worker would block this worker on futures
    // only the (possibly fully blocked) pool can complete; run inline,
    // stamped so the runtime lands on this worker's timeline.
    inline_fallbacks_total_->Inc();
    const InlineStamp stamp = BeginInline();
    fn(begin, end, 0);
    FinishInline(stamp);
    return;
  }
  const std::size_t total = end - begin;
  const std::size_t num_chunks = std::min(total, workers_.size());
  if (num_chunks <= 1) {
    const InlineStamp stamp = BeginInline();
    fn(begin, end, 0);
    FinishInline(stamp);
    return;
  }
  const std::size_t chunk = (total + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futures.push_back(Submit([&fn, lo, hi, c] { fn(lo, hi, c); }));
  }
  // Wait for every chunk before rethrowing: an early rethrow would destroy
  // `fn` while still-queued chunks reference it.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::ParallelForGroups(
    std::span<const std::size_t> group_sizes,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  const bool inline_only = OnWorkerThread();
  if (inline_only) inline_fallbacks_total_->Inc();
  // Serial groups (size 1, or everything when inline/one worker) run on the
  // caller; consecutive ones coalesce into ONE profiler sample so a commit
  // schedule of thousands of singleton groups costs four clock reads per
  // run of singletons, not per group.
  InlineStamp serial_stamp;
  for (std::size_t g = 0; g < group_sizes.size(); ++g) {
    const std::size_t n = group_sizes[g];
    if (n == 0) continue;
    if (inline_only || n == 1 || workers_.size() <= 1) {
      if (!serial_stamp.armed) serial_stamp = BeginInline();
      for (std::size_t i = 0; i < n; ++i) fn(g, i);
      continue;
    }
    if (serial_stamp.armed) {
      FinishInline(serial_stamp);
      serial_stamp = InlineStamp{};
    }
    // ParallelFor is the barrier: every item of group g completes (or its
    // first exception is rethrown, abandoning later groups) before g+1.
    ParallelFor(0, n, [&fn, g](std::size_t i) { fn(g, i); });
  }
  FinishInline(serial_stamp);
}

}  // namespace nezha
