#include "common/thread_pool.h"

#include <algorithm>
#include <cassert>

namespace nezha {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> fut = wrapped.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    assert(!stopping_);
    tasks_.push(std::move(wrapped));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // exceptions are captured in the packaged_task's future
  }
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn) {
  ParallelForChunked(begin, end,
                     [&fn](std::size_t lo, std::size_t hi, std::size_t) {
                       for (std::size_t i = lo; i < hi; ++i) fn(i);
                     });
}

void ThreadPool::ParallelForChunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t num_chunks = std::min(total, workers_.size());
  if (num_chunks <= 1) {
    fn(begin, end, 0);
    return;
  }
  const std::size_t chunk = (total + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futures.push_back(Submit([&fn, lo, hi, c] { fn(lo, hi, c); }));
  }
  for (auto& f : futures) f.get();  // rethrows the first captured exception
}

}  // namespace nezha
