#include "common/thread_pool.h"

#include <algorithm>
#include <cassert>
#include <exception>

#include "obs/trace.h"

namespace nezha {
namespace {

/// The pool whose WorkerLoop the current thread is running, if any.
thread_local const ThreadPool* tls_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  auto& registry = obs::Registry();
  queue_depth_ = registry.GetGauge("nezha_threadpool_queue_depth");
  tasks_total_ = registry.GetCounter("nezha_threadpool_tasks_total");
  busy_us_total_ = registry.GetCounter("nezha_threadpool_busy_us_total");
  inline_fallbacks_total_ =
      registry.GetCounter("nezha_threadpool_inline_fallbacks_total");
  task_wait_us_ = registry.GetHistogram("nezha_threadpool_task_wait_us");
  task_run_us_ = registry.GetHistogram("nezha_threadpool_task_run_us");

  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  registry.GetGauge("nezha_threadpool_workers")
      ->Add(static_cast<std::int64_t>(num_threads));
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] {
      obs::SetThreadName("pool-worker-" + std::to_string(i));
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  obs::Registry()
      .GetGauge("nezha_threadpool_workers")
      ->Add(-static_cast<std::int64_t>(workers_.size()));
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  QueuedTask queued{std::packaged_task<void()>(std::move(task)),
                    obs::PhaseTracer::NowUs()};
  std::future<void> fut = queued.task.get_future();
  {
    MutexLock lock(mutex_);
    assert(!stopping_);
    tasks_.push(std::move(queued));
  }
  tasks_total_->Inc();
  queue_depth_->Add(1);
  cv_.notify_one();
  return fut;
}

bool ThreadPool::OnWorkerThread() const { return tls_worker_pool == this; }

void ThreadPool::WorkerLoop() {
  tls_worker_pool = this;
  for (;;) {
    QueuedTask queued;
    {
      MutexLock lock(mutex_);
      // Open-coded wait keeps the condition reads inside this function,
      // where the analysis can see the mutex is held (a predicate lambda
      // cannot carry a REQUIRES annotation).
      while (!stopping_ && tasks_.empty()) cv_.wait(mutex_);
      if (stopping_ && tasks_.empty()) return;
      queued = std::move(tasks_.front());
      tasks_.pop();
    }
    queue_depth_->Add(-1);
    const double start_us = obs::PhaseTracer::NowUs();
    task_wait_us_->Observe(start_us - queued.enqueue_us);
    queued.task();  // exceptions are captured in the packaged_task's future
    const double run_us = obs::PhaseTracer::NowUs() - start_us;
    task_run_us_->Observe(run_us);
    busy_us_total_->Inc(static_cast<std::uint64_t>(run_us));
  }
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn) {
  ParallelForChunked(begin, end,
                     [&fn](std::size_t lo, std::size_t hi, std::size_t) {
                       for (std::size_t i = lo; i < hi; ++i) fn(i);
                     });
}

void ThreadPool::ParallelForChunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  if (OnWorkerThread()) {
    // Nested submission from a worker would block this worker on futures
    // only the (possibly fully blocked) pool can complete; run inline.
    inline_fallbacks_total_->Inc();
    fn(begin, end, 0);
    return;
  }
  const std::size_t total = end - begin;
  const std::size_t num_chunks = std::min(total, workers_.size());
  if (num_chunks <= 1) {
    fn(begin, end, 0);
    return;
  }
  const std::size_t chunk = (total + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futures.push_back(Submit([&fn, lo, hi, c] { fn(lo, hi, c); }));
  }
  // Wait for every chunk before rethrowing: an early rethrow would destroy
  // `fn` while still-queued chunks reference it.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::ParallelForGroups(
    std::span<const std::size_t> group_sizes,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  const bool inline_only = OnWorkerThread();
  if (inline_only) inline_fallbacks_total_->Inc();
  for (std::size_t g = 0; g < group_sizes.size(); ++g) {
    const std::size_t n = group_sizes[g];
    if (n == 0) continue;
    if (inline_only || n == 1 || workers_.size() <= 1) {
      for (std::size_t i = 0; i < n; ++i) fn(g, i);
      continue;
    }
    // ParallelFor is the barrier: every item of group g completes (or its
    // first exception is rethrown, abandoning later groups) before g+1.
    ParallelFor(0, n, [&fn, g](std::size_t i) { fn(g, i); });
  }
}

}  // namespace nezha
