// Append helpers for the canonical text encodings digested by the
// determinism checkpoints (src/analysis/det_checkpoint.h). The encoders run
// per epoch on every stage boundary when auditing is on, so they are built
// with std::to_chars appends instead of snprintf — the formatter parse per
// line is what dominated the first implementation (~70 ns/field vs ~5 ns).
#pragma once

#include <charconv>
#include <cstdint>
#include <string>

namespace nezha {

inline void AppendU64(std::string& out, std::uint64_t v) {
  char buf[20];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, result.ptr);
}

inline void AppendI64(std::string& out, std::int64_t v) {
  char buf[21];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, result.ptr);
}

}  // namespace nezha
