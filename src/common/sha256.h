// Self-contained SHA-256 (FIPS 180-4). Used for block hashes and Merkle
// Patricia Trie node hashes so the ledger substrate has real cryptographic
// commitments without external dependencies.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace nezha {

/// A 32-byte SHA-256 digest.
struct Hash256 {
  std::array<std::uint8_t, 32> bytes{};

  friend bool operator==(const Hash256& a, const Hash256& b) {
    return a.bytes == b.bytes;
  }
  friend bool operator!=(const Hash256& a, const Hash256& b) {
    return !(a == b);
  }
  friend bool operator<(const Hash256& a, const Hash256& b) {
    return a.bytes < b.bytes;
  }

  /// Lowercase hex, 64 chars.
  std::string ToHex() const;

  /// True if all bytes are zero (the default/empty hash).
  bool IsZero() const;
};

/// Incremental SHA-256 hasher. On x86-64 CPUs with the SHA extensions the
/// compression function runs on the SHA-NI instructions (detected once at
/// startup, ~7x faster); the portable FIPS 180-4 implementation is the
/// fallback and produces identical digests.
class Sha256 {
 public:
  Sha256();

  Sha256& Update(std::span<const std::uint8_t> data);
  Sha256& Update(std::string_view data);

  /// Finalizes and returns the digest. The hasher must not be reused after.
  Hash256 Finish();

  /// One-shot convenience.
  static Hash256 Digest(std::string_view data);
  static Hash256 Digest(std::span<const std::uint8_t> data);

  /// True when this process dispatches to the SHA-NI compression function.
  static bool HardwareAccelerated();
  /// Test hook: force the portable compression function even when SHA-NI
  /// is available, so differential tests can compare the two paths in one
  /// process. Pass false to restore runtime dispatch.
  static void ForceScalarForTest(bool force);

 private:
  void ProcessBlock(const std::uint8_t* block);
  /// Dispatches `blocks` consecutive 64-byte blocks to SHA-NI or the
  /// portable loop (batching amortizes the state load/store).
  void ProcessBlocks(const std::uint8_t* data, std::size_t blocks);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_bytes_ = 0;
  std::size_t buffer_len_ = 0;
};

}  // namespace nezha

template <>
struct std::hash<nezha::Hash256> {
  std::size_t operator()(const nezha::Hash256& h) const noexcept {
    // Digest bytes are already uniformly distributed; fold the first word.
    std::size_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out = (out << 8) | h.bytes[static_cast<std::size_t>(i)];
    }
    return out;
  }
};
