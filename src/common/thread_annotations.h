// Clang thread-safety annotations plus the annotated mutex vocabulary the
// whole codebase locks with (docs/ANALYSIS.md §Annotations).
//
// The macros expand to clang's `-Wthread-safety` attributes under clang and
// to nothing elsewhere, so GCC builds are unaffected while the clang CI job
// (`-Werror=thread-safety-analysis`) proves at compile time that every
// GUARDED_BY field is only touched with its mutex held.
//
// Lock with the annotated types below — std::mutex/std::lock_guard are
// invisible to the analysis:
//   * Mutex        — exclusive capability (wraps std::mutex);
//   * SharedMutex  — reader/writer capability (wraps std::shared_mutex);
//   * MutexLock    — scoped exclusive acquisition of either;
//   * ReaderMutexLock — scoped shared acquisition of a SharedMutex.
// Mutex also satisfies BasicLockable (lowercase lock/unlock), so
// std::condition_variable_any can wait on it directly.
#pragma once

#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define NEZHA_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define NEZHA_THREAD_ANNOTATION_ATTRIBUTE(x)
#endif

#define CAPABILITY(x) NEZHA_THREAD_ANNOTATION_ATTRIBUTE(capability(x))
#define SCOPED_CAPABILITY NEZHA_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)
#define GUARDED_BY(x) NEZHA_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))
#define PT_GUARDED_BY(x) NEZHA_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) \
  NEZHA_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  NEZHA_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  NEZHA_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  NEZHA_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) \
  NEZHA_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  NEZHA_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  NEZHA_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  NEZHA_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  NEZHA_THREAD_ANNOTATION_ATTRIBUTE(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  NEZHA_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) \
  NEZHA_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) \
  NEZHA_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))
#define RETURN_CAPABILITY(x) NEZHA_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  NEZHA_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

namespace nezha {

/// Exclusive mutex the analysis can see. BasicLockable so
/// std::condition_variable_any waits on it directly (the wait's internal
/// unlock/relock is opaque to the analysis and restores the held state).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling (std::condition_variable_any).
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// Reader/writer mutex the analysis can see.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock over a Mutex or SharedMutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(&mu), shared_(nullptr) {
    mu_->Lock();
  }
  explicit MutexLock(SharedMutex& mu) ACQUIRE(mu)
      : mu_(nullptr), shared_(&mu) {
    shared_->Lock();
  }
  ~MutexLock() RELEASE() {
    if (mu_ != nullptr) {
      mu_->Unlock();
    } else {
      shared_->Unlock();
    }
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
  SharedMutex* shared_;
};

/// Scoped shared (reader) lock over a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() RELEASE() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace nezha
