// Zipfian sampler over [0, n) with exponent `skew`.
//
// The paper's workloads draw SmallBank account ids from a Zipfian
// distribution over 10k accounts with skew in [0, 1.0]; skew = 0 degenerates
// to the uniform distribution. We use the classic Gray et al. (SIGMOD'94)
// computation, with the zeta constants precomputed once per (n, skew).
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace nezha {

class ZipfianGenerator {
 public:
  /// n: population size (> 0); skew: Zipfian exponent theta (>= 0).
  /// skew == 0 is exact uniform sampling.
  ZipfianGenerator(std::uint64_t n, double skew);

  /// Draws one rank in [0, n). Rank 0 is the most popular item.
  std::uint64_t Next(Rng& rng);

  std::uint64_t population() const { return n_; }
  double skew() const { return theta_; }

  /// Probability mass of rank k under this distribution (for tests and the
  /// analytic conflict model).
  double ProbabilityOfRank(std::uint64_t k) const;

 private:
  static double Zeta(std::uint64_t n, double theta);

  std::uint64_t n_;
  double theta_;
  double zetan_ = 0;   // zeta(n, theta)
  double alpha_ = 0;   // 1 / (1 - theta)
  double eta_ = 0;
  double half_pow_theta_ = 0;  // (0.5)^theta
};

/// Scrambled Zipfian: applies a multiplicative hash over the Zipfian rank so
/// hot items are spread across the key space (YCSB-style). Hot-set size and
/// conflict structure are preserved; only the identities of the hot keys
/// change. Workloads use this so "account 0" is not always the hotspot.
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(std::uint64_t n, double skew)
      : inner_(n, skew), n_(n) {}

  std::uint64_t Next(Rng& rng) {
    const std::uint64_t rank = inner_.Next(rng);
    if (inner_.skew() == 0.0) return rank;  // already uniform
    std::uint64_t x = rank;
    // FNV-style scramble, then reduce.
    x = (x ^ (x >> 33)) * 0xff51afd7ed558ccdull;
    x = (x ^ (x >> 33)) * 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x % n_;
  }

 private:
  ZipfianGenerator inner_;
  std::uint64_t n_;
};

}  // namespace nezha
