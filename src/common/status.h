// Lightweight Status / Result error-handling vocabulary.
//
// The library avoids exceptions on hot paths (scheduling millions of
// read/write units); fallible operations return Status or Result<T>.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace nezha {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kInvalidArgument,
  kCorruption,
  kAlreadyExists,
  kAborted,
  kOutOfRange,
  kInternal,
  kUnavailable,  ///< transient failure (drop/timeout); safe to retry
};

/// Human-readable name of a status code ("OK", "NotFound", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error value with an optional message. Cheap to copy when OK.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }
  static Status NotFound(std::string m = "") {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status InvalidArgument(std::string m = "") {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status Corruption(std::string m = "") {
    return {StatusCode::kCorruption, std::move(m)};
  }
  static Status AlreadyExists(std::string m = "") {
    return {StatusCode::kAlreadyExists, std::move(m)};
  }
  static Status Aborted(std::string m = "") {
    return {StatusCode::kAborted, std::move(m)};
  }
  static Status OutOfRange(std::string m = "") {
    return {StatusCode::kOutOfRange, std::move(m)};
  }
  static Status Internal(std::string m = "") {
    return {StatusCode::kInternal, std::move(m)};
  }
  static Status Unavailable(std::string m = "") {
    return {StatusCode::kUnavailable, std::move(m)};
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "NotFound: key missing".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or a Status error.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : value_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(value_).ok() && "Result error must not be OK");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(value_);
  }

  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> value_;
};

}  // namespace nezha
