// Wall-clock timing utilities for phase instrumentation.
#pragma once

#include <chrono>
#include <cstdint>

namespace nezha {

/// Monotonic stopwatch with microsecond resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }
  double ElapsedMillis() const { return ElapsedMicros() / 1000.0; }
  double ElapsedSeconds() const { return ElapsedMicros() / 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across multiple timed sections.
class PhaseTimer {
 public:
  void Add(double micros) { total_micros_ += micros; ++count_; }
  void Reset() { total_micros_ = 0; count_ = 0; }

  double TotalMicros() const { return total_micros_; }
  double TotalMillis() const { return total_micros_ / 1000.0; }
  std::uint64_t count() const { return count_; }
  double MeanMicros() const {
    return count_ == 0 ? 0.0 : total_micros_ / static_cast<double>(count_);
  }

 private:
  double total_micros_ = 0;
  std::uint64_t count_ = 0;
};

/// RAII section timer feeding a PhaseTimer.
class ScopedPhase {
 public:
  explicit ScopedPhase(PhaseTimer& timer) : timer_(timer) {}
  ~ScopedPhase() { timer_.Add(watch_.ElapsedMicros()); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer& timer_;
  Stopwatch watch_;
};

}  // namespace nezha
