#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

#include "obs/trace.h"

namespace nezha {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) return;

  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm_buf{};
  localtime_r(&seconds, &tm_buf);
  char stamp[48];
  std::snprintf(stamp, sizeof(stamp), "%04d-%02d-%02d %02d:%02d:%02d.%03d",
                tm_buf.tm_year + 1900, tm_buf.tm_mon + 1, tm_buf.tm_mday,
                tm_buf.tm_hour, tm_buf.tm_min, tm_buf.tm_sec,
                static_cast<int>(millis));

  std::fprintf(stderr, "[%s] [%s] [t%u] %s\n", stamp, LevelName(level),
               obs::CurrentThreadId(), message.c_str());
}

}  // namespace nezha
