// KVWorkload: a synthetic key-value workload generating read/write sets
// directly, with independently tunable reads/writes per transaction and a
// blind-write fraction.
//
// SmallBank (the paper's benchmark) only issues read-modify-writes — every
// written address is also read — which means the §IV.D reordering
// enhancement's write-write rescue path never fires on it. This generator
// produces the blind multi-address writes (Fig. 8's shape) that exercise
// that path, and is used by the reordering/rank-policy ablation benches and
// stress tests.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/zipfian.h"
#include "vm/rwset.h"

namespace nezha {

struct KVWorkloadConfig {
  std::uint64_t num_keys = 10'000;
  double skew = 0.0;
  std::size_t reads_per_tx = 2;
  std::size_t writes_per_tx = 2;
  /// Probability that a written key is NOT also read (a blind write).
  /// 0.0 reproduces SmallBank's all-RMW shape; 1.0 is all blind writes.
  double blind_write_fraction = 1.0;
};

class KVWorkload {
 public:
  KVWorkload(const KVWorkloadConfig& config, std::uint64_t seed)
      : config_(config), rng_(seed), sampler_(config.num_keys, config.skew) {}

  /// One synthetic transaction's read/write set (sorted, deduplicated).
  ReadWriteSet NextRWSet();

  /// A batch of n transactions.
  std::vector<ReadWriteSet> MakeBatch(std::size_t n);

 private:
  KVWorkloadConfig config_;
  Rng rng_;
  ZipfianGenerator sampler_;
};

}  // namespace nezha
