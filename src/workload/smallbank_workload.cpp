#include "workload/smallbank_workload.h"

namespace nezha {

SmallBankWorkload::SmallBankWorkload(const WorkloadConfig& config,
                                     std::uint64_t seed)
    : config_(config),
      rng_(seed),
      account_sampler_(config.num_accounts,
                       config.scrambled ? config.skew : config.skew) {}

std::uint64_t SmallBankWorkload::PickAccount() {
  return account_sampler_.Next(rng_);
}

std::uint64_t SmallBankWorkload::PickAccountDistinctFrom(std::uint64_t other) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::uint64_t account = PickAccount();
    if (account != other) return account;
  }
  // Pathological single-account population: fall back to a neighbour.
  return (other + 1) % config_.num_accounts;
}

Transaction SmallBankWorkload::NextTransaction() {
  Transaction tx;
  tx.nonce = next_nonce_++;
  const auto op = static_cast<SmallBankOp>(rng_.Below(kNumSmallBankOps));
  const std::uint64_t amount = rng_.Between(1, config_.max_amount);
  switch (op) {
    case SmallBankOp::kUpdateSavings:
    case SmallBankOp::kUpdateBalance:
    case SmallBankOp::kWriteCheck: {
      tx.payload = MakeSmallBankCall(op, {PickAccount(), amount});
      break;
    }
    case SmallBankOp::kSendPayment: {
      const std::uint64_t from = PickAccount();
      const std::uint64_t to = PickAccountDistinctFrom(from);
      tx.payload = MakeSmallBankCall(op, {from, to, amount});
      break;
    }
    case SmallBankOp::kAmalgamate: {
      const std::uint64_t from = PickAccount();
      const std::uint64_t to = PickAccountDistinctFrom(from);
      tx.payload = MakeSmallBankCall(op, {from, to});
      break;
    }
    case SmallBankOp::kGetBalance: {
      tx.payload = MakeSmallBankCall(op, {PickAccount()});
      break;
    }
  }
  return tx;
}

std::vector<Transaction> SmallBankWorkload::MakeBatch(std::size_t n) {
  std::vector<Transaction> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) batch.push_back(NextTransaction());
  return batch;
}

void SmallBankWorkload::InitAccounts(StateDB& db, std::uint64_t num_accounts,
                                     StateValue initial_savings,
                                     StateValue initial_checking) {
  for (std::uint64_t account = 0; account < num_accounts; ++account) {
    db.Set(SavingsAddress(account), initial_savings);
    db.Set(CheckingAddress(account), initial_checking);
  }
}

}  // namespace nezha
