// Conflict analytics behind the paper's Table I and §III.C.
//
// The paper models the number of potential conflicts among N_e concurrent
// transactions as C = N_e(N_e-1)/2 * p, where p is the probability that two
// transactions conflict, and reports (with block size 20 and a fixed Zipfian
// over 10k accounts):
//
//   block concurrency     2      4      6       8
//   total conflicts     780p  3160p  7140p  12720p
//   per-address         26p    56p   106p    150p
//
// This module provides the closed-form pair count, the expected number of
// distinct addresses touched (the denominator of the per-address row), and
// empirical measurement of both on real generated workloads.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/zipfian.h"
#include "vm/rwset.h"

namespace nezha {

/// N(N-1)/2 — the number of transaction pairs ("total conflicts" in units
/// of p).
std::uint64_t ConflictPairCount(std::uint64_t n_txs);

/// Expected number of distinct values seen in `draws` samples from a
/// Zipfian(population, skew) distribution: sum_k (1 - (1 - p_k)^draws).
double ExpectedDistinctAddresses(std::uint64_t population, double skew,
                                 std::uint64_t draws);

struct ConflictStats {
  std::uint64_t n_txs = 0;
  std::uint64_t pair_count = 0;          ///< N(N-1)/2
  std::uint64_t conflicting_pairs = 0;   ///< measured conflicts
  double conflict_probability = 0;       ///< measured p
  std::uint64_t distinct_addresses = 0;  ///< addresses accessed by the batch
  double avg_conflicts_per_address = 0;  ///< conflicting pairs / addresses
  std::uint64_t max_txs_on_one_address = 0;
};

/// Measures conflicts across a batch of simulated read/write sets:
/// a pair conflicts if one writes an address the other reads or writes.
ConflictStats MeasureConflicts(std::span<const ReadWriteSet> rwsets);

}  // namespace nezha
