#include "workload/conflict_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace nezha {

std::uint64_t ConflictPairCount(std::uint64_t n_txs) {
  return n_txs * (n_txs - 1) / 2;
}

double ExpectedDistinctAddresses(std::uint64_t population, double skew,
                                 std::uint64_t draws) {
  const ZipfianGenerator dist(population, skew);
  double expected = 0;
  for (std::uint64_t k = 0; k < population; ++k) {
    const double pk = dist.ProbabilityOfRank(k);
    expected += 1.0 - std::pow(1.0 - pk, static_cast<double>(draws));
  }
  return expected;
}

ConflictStats MeasureConflicts(std::span<const ReadWriteSet> rwsets) {
  ConflictStats stats;
  stats.n_txs = rwsets.size();
  stats.pair_count = ConflictPairCount(stats.n_txs);

  for (std::size_t i = 0; i < rwsets.size(); ++i) {
    for (std::size_t j = i + 1; j < rwsets.size(); ++j) {
      if (Conflicts(rwsets[i], rwsets[j])) ++stats.conflicting_pairs;
    }
  }
  stats.conflict_probability =
      stats.pair_count == 0
          ? 0
          : static_cast<double>(stats.conflicting_pairs) /
                static_cast<double>(stats.pair_count);

  std::unordered_map<std::uint64_t, std::uint64_t> txs_per_address;
  for (const ReadWriteSet& rw : rwsets) {
    // Count each tx once per address it touches (read or write).
    std::vector<Address> touched(rw.reads);
    touched.insert(touched.end(), rw.writes.begin(), rw.writes.end());
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    for (Address a : touched) ++txs_per_address[a.value];
  }
  stats.distinct_addresses = txs_per_address.size();
  for (const auto& [addr, count] : txs_per_address) {
    stats.max_txs_on_one_address =
        std::max(stats.max_txs_on_one_address, count);
  }
  stats.avg_conflicts_per_address =
      stats.distinct_addresses == 0
          ? 0
          : static_cast<double>(stats.conflicting_pairs) /
                static_cast<double>(stats.distinct_addresses);
  return stats;
}

}  // namespace nezha
