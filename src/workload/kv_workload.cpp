#include "workload/kv_workload.h"

#include <algorithm>

namespace nezha {

ReadWriteSet KVWorkload::NextRWSet() {
  ReadWriteSet rw;
  // Draw distinct write keys first (a tx writes each key once).
  std::vector<std::uint64_t> writes;
  while (writes.size() < config_.writes_per_tx) {
    const std::uint64_t key = sampler_.Next(rng_);
    if (std::find(writes.begin(), writes.end(), key) == writes.end()) {
      writes.push_back(key);
    }
  }
  // Non-blind writes read their own key; plus independent extra reads.
  std::vector<std::uint64_t> reads;
  for (std::uint64_t key : writes) {
    if (!rng_.Chance(config_.blind_write_fraction)) reads.push_back(key);
  }
  for (std::size_t i = 0; i < config_.reads_per_tx; ++i) {
    reads.push_back(sampler_.Next(rng_));
  }
  std::sort(reads.begin(), reads.end());
  reads.erase(std::unique(reads.begin(), reads.end()), reads.end());
  std::sort(writes.begin(), writes.end());

  for (std::uint64_t key : reads) rw.reads.push_back(Address(key));
  for (std::uint64_t key : writes) {
    rw.writes.push_back(Address(key));
    rw.write_values.push_back(static_cast<StateValue>(rng_.Below(1'000'000)));
  }
  return rw;
}

std::vector<ReadWriteSet> KVWorkload::MakeBatch(std::size_t n) {
  std::vector<ReadWriteSet> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) batch.push_back(NextRWSet());
  return batch;
}

}  // namespace nezha
