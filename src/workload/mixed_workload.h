// MixedWorkload: heterogeneous traffic over all three registered contracts
// (SmallBank + raw KV + token), with per-contract Zipfian skew and a
// configurable mix. Exercises contract dispatch, disjoint address
// namespaces, blind writes (KV) and execution-time reverts (token) through
// the full pipeline.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/zipfian.h"
#include "ledger/transaction.h"
#include "storage/state_db.h"

namespace nezha {

struct MixedWorkloadConfig {
  std::uint64_t smallbank_accounts = 1'000;
  std::uint64_t kv_keys = 1'000;
  std::uint64_t token_holders = 1'000;
  double skew = 0.6;  ///< shared Zipfian coefficient for all three spaces
  /// Relative weights of the three traffic classes (need not sum to 1).
  double smallbank_weight = 1.0;
  double kv_weight = 1.0;
  double token_weight = 1.0;
  std::uint64_t max_amount = 100;
};

class MixedWorkload {
 public:
  MixedWorkload(const MixedWorkloadConfig& config, std::uint64_t seed);

  Transaction NextTransaction();
  std::vector<Transaction> MakeBatch(std::size_t n);

  /// Funds SmallBank accounts and token holders so transfers act on real
  /// balances (under-funded token holders still revert now and then, which
  /// is intended: it exercises the abort-at-execution path).
  static void InitState(StateDB& db, const MixedWorkloadConfig& config,
                        StateValue initial_balance);

 private:
  std::uint64_t PickDistinct(ZipfianGenerator& sampler, std::uint64_t other);

  MixedWorkloadConfig config_;
  Rng rng_;
  ZipfianGenerator smallbank_sampler_;
  ZipfianGenerator kv_sampler_;
  ZipfianGenerator token_sampler_;
  std::uint64_t next_nonce_ = 1;
};

}  // namespace nezha
