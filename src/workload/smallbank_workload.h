// SmallBank workload generator (§VI.A of the paper).
//
// Each generated transaction picks one of the six SmallBank operations
// uniformly at random; accounts are drawn from a Zipfian distribution over
// `num_accounts` accounts (skew = 0 degenerates to uniform). Larger skew
// concentrates accesses on hot accounts and raises the conflict rate.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/zipfian.h"
#include "ledger/transaction.h"
#include "storage/state_db.h"
#include "vm/smallbank.h"

namespace nezha {

struct WorkloadConfig {
  std::uint64_t num_accounts = 10'000;  ///< paper: 10k accounts
  double skew = 0.0;                    ///< Zipfian coefficient
  std::uint64_t max_amount = 100;       ///< transfer amounts in [1, max]
  bool scrambled = true;  ///< spread hot accounts across the id space
};

class SmallBankWorkload {
 public:
  SmallBankWorkload(const WorkloadConfig& config, std::uint64_t seed);

  const WorkloadConfig& config() const { return config_; }

  /// One random SmallBank transaction (monotonically increasing nonce).
  Transaction NextTransaction();

  /// A batch of n transactions.
  std::vector<Transaction> MakeBatch(std::size_t n);

  /// Funds every account with the given starting balances so transfers act
  /// on non-trivial state.
  static void InitAccounts(StateDB& db, std::uint64_t num_accounts,
                           StateValue initial_savings,
                           StateValue initial_checking);

 private:
  std::uint64_t PickAccount();
  /// Picks a second account distinct from `other` (two-account ops).
  std::uint64_t PickAccountDistinctFrom(std::uint64_t other);

  WorkloadConfig config_;
  Rng rng_;
  ScrambledZipfianGenerator account_sampler_;
  std::uint64_t next_nonce_ = 1;
};

}  // namespace nezha
