#include "workload/mixed_workload.h"

#include "vm/kv_contract.h"
#include "vm/smallbank.h"
#include "vm/token_contract.h"

namespace nezha {

MixedWorkload::MixedWorkload(const MixedWorkloadConfig& config,
                             std::uint64_t seed)
    : config_(config),
      rng_(seed),
      smallbank_sampler_(config.smallbank_accounts, config.skew),
      kv_sampler_(config.kv_keys, config.skew),
      token_sampler_(config.token_holders, config.skew) {}

std::uint64_t MixedWorkload::PickDistinct(ZipfianGenerator& sampler,
                                          std::uint64_t other) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::uint64_t pick = sampler.Next(rng_);
    if (pick != other) return pick;
  }
  return (other + 1) % sampler.population();
}

Transaction MixedWorkload::NextTransaction() {
  Transaction tx;
  tx.nonce = next_nonce_++;
  const double total = config_.smallbank_weight + config_.kv_weight +
                       config_.token_weight;
  const double roll = rng_.NextDouble() * total;
  const std::uint64_t amount = rng_.Between(1, config_.max_amount);

  if (roll < config_.smallbank_weight) {
    const auto op = static_cast<SmallBankOp>(rng_.Below(kNumSmallBankOps));
    const std::uint64_t a = smallbank_sampler_.Next(rng_);
    switch (op) {
      case SmallBankOp::kSendPayment:
        tx.payload = MakeSmallBankCall(
            op, {a, PickDistinct(smallbank_sampler_, a), amount});
        break;
      case SmallBankOp::kAmalgamate:
        tx.payload =
            MakeSmallBankCall(op, {a, PickDistinct(smallbank_sampler_, a)});
        break;
      case SmallBankOp::kGetBalance:
        tx.payload = MakeSmallBankCall(op, {a});
        break;
      default:
        tx.payload = MakeSmallBankCall(op, {a, amount});
        break;
    }
  } else if (roll < config_.smallbank_weight + config_.kv_weight) {
    const auto op = static_cast<KVOp>(rng_.Below(5));
    const std::uint64_t k = kv_sampler_.Next(rng_);
    switch (op) {
      case KVOp::kSet:
      case KVOp::kAdd:
        tx.payload = MakeKVCall(op, {k, amount});
        break;
      case KVOp::kGet:
        tx.payload = MakeKVCall(op, {k});
        break;
      case KVOp::kMultiSet:
        tx.payload = MakeKVCall(
            op, {k, amount, PickDistinct(kv_sampler_, k), amount + 1});
        break;
      case KVOp::kCopy:
        tx.payload = MakeKVCall(op, {k, PickDistinct(kv_sampler_, k)});
        break;
    }
  } else {
    const auto op = static_cast<TokenOp>(rng_.Below(5));
    const std::uint64_t holder = token_sampler_.Next(rng_);
    switch (op) {
      case TokenOp::kMint:
        tx.payload = MakeTokenCall(op, {holder, amount});
        break;
      case TokenOp::kTransfer:
        tx.payload = MakeTokenCall(
            op, {holder, PickDistinct(token_sampler_, holder), amount});
        break;
      case TokenOp::kApprove:
        tx.payload = MakeTokenCall(
            op, {holder, PickDistinct(token_sampler_, holder), amount});
        break;
      case TokenOp::kTransferFrom: {
        const std::uint64_t owner = PickDistinct(token_sampler_, holder);
        tx.payload = MakeTokenCall(
            op, {holder, owner, PickDistinct(token_sampler_, owner), amount});
        break;
      }
      case TokenOp::kBalanceOf:
        tx.payload = MakeTokenCall(op, {holder});
        break;
    }
  }
  return tx;
}

std::vector<Transaction> MixedWorkload::MakeBatch(std::size_t n) {
  std::vector<Transaction> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) batch.push_back(NextTransaction());
  return batch;
}

void MixedWorkload::InitState(StateDB& db, const MixedWorkloadConfig& config,
                              StateValue initial_balance) {
  for (std::uint64_t a = 0; a < config.smallbank_accounts; ++a) {
    db.Set(SavingsAddress(a), initial_balance);
    db.Set(CheckingAddress(a), initial_balance);
  }
  for (std::uint64_t h = 0; h < config.token_holders; ++h) {
    db.Set(TokenBalanceAddress(h), initial_balance);
  }
}

}  // namespace nezha
