#include "fault/net_plan.h"

#include <algorithm>

#include "obs/metrics.h"

namespace nezha::fault {

const char* MsgKindName(MsgKind kind) {
  switch (kind) {
    case MsgKind::kAny:
      return "any";
    case MsgKind::kVertex:
      return "vertex";
    case MsgKind::kBlock:
      return "block";
    case MsgKind::kGossip:
      return "gossip";
  }
  return "?";
}

const char* ByzBehaviorName(ByzBehavior behavior) {
  switch (behavior) {
    case ByzBehavior::kNone:
      return "none";
    case ByzBehavior::kEquivocate:
      return "equivocate";
    case ByzBehavior::kWithhold:
      return "withhold";
    case ByzBehavior::kInvalidBlock:
      return "invalid-block";
  }
  return "?";
}

NetEmulator::NetEmulator(NetPlan plan, std::string component)
    : plan_(std::move(plan)),
      component_(std::move(component)),
      rng_(plan_.seed()),
      active_(!plan_.Empty()) {}

void NetEmulator::Count(std::string_view action, std::uint64_t n) {
  obs::Registry()
      .GetCounter("nezha_net_chaos_total",
                  {{"sim", component_}, {"action", std::string(action)}})
      ->Inc(n);
}

bool NetEmulator::Partitioned(std::uint32_t src, std::uint32_t dst,
                              double now) const {
  for (const PartitionSpec& partition : plan_.partitions()) {
    if (now < partition.start_ms || now >= partition.heal_ms) continue;
    const auto in_island = [&partition](std::uint32_t node) {
      return std::find(partition.island.begin(), partition.island.end(),
                       node) != partition.island.end();
    };
    if (in_island(src) != in_island(dst)) return true;
  }
  return false;
}

std::vector<double> NetEmulator::Deliveries(std::uint32_t src,
                                            std::uint32_t dst, MsgKind kind,
                                            double now,
                                            double base_delay_ms) {
  if (!Active()) return {now + base_delay_ms};
  ++stats_.sent;

  // Partitions first: a crossing message is held until every active
  // partition between the endpoints heals, then delivered with its
  // original propagation delay (per-sender order preserved: equal heal
  // times resolve by EventQueue insertion sequence).
  double heal = 0;
  bool crossing = false;
  for (const PartitionSpec& partition : plan_.partitions()) {
    if (now < partition.start_ms || now >= partition.heal_ms) continue;
    const auto in_island = [&partition](std::uint32_t node) {
      return std::find(partition.island.begin(), partition.island.end(),
                       node) != partition.island.end();
    };
    if (in_island(src) != in_island(dst)) {
      crossing = true;
      heal = std::max(heal, partition.heal_ms);
    }
  }
  if (crossing) {
    ++stats_.held;
    ++stats_.delivered;
    Count("held");
    return {heal + base_delay_ms};
  }

  double delay = base_delay_ms;
  std::uint32_t copies = 1;
  double dup_offset_ms = 0;
  bool dropped = false;
  for (const NetSpec& spec : plan_.specs()) {
    if (spec.src != kAnyNode && spec.src != static_cast<std::int32_t>(src)) {
      continue;
    }
    if (spec.dst != kAnyNode && spec.dst != static_cast<std::int32_t>(dst)) {
      continue;
    }
    if (spec.kind != MsgKind::kAny && spec.kind != kind) continue;
    if (now < spec.from_ms || now >= spec.until_ms) continue;
    if (spec.probability < 1.0 && !rng_.Chance(spec.probability)) continue;
    switch (spec.action) {
      case Action::kDrop:
        dropped = true;
        break;
      case Action::kDelay:
        delay += spec.param_ms;
        ++stats_.delayed;
        Count("delay");
        break;
      case Action::kReorder:
        // Seeded jitter on top of the normal delay: two messages of one
        // sender can now swap arrival order.
        delay += rng_.NextDouble() * spec.param_ms;
        ++stats_.reordered;
        Count("reorder");
        break;
      case Action::kDuplicate:
        ++copies;
        dup_offset_ms = spec.param_ms;
        ++stats_.duplicated;
        Count("duplicate");
        break;
      default:
        break;  // storage-only actions have no message semantics
    }
    if (dropped) break;
  }
  if (dropped) {
    ++stats_.dropped;
    Count("drop");
    return {};
  }

  std::vector<double> deliveries;
  deliveries.reserve(copies);
  for (std::uint32_t copy = 0; copy < copies; ++copy) {
    deliveries.push_back(now + delay + static_cast<double>(copy) *
                                           std::max(dup_offset_ms, 0.0));
  }
  stats_.delivered += deliveries.size();
  return deliveries;
}

}  // namespace nezha::fault
