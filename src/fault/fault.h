// Deterministic fault injection: the machinery that turns "what if the node
// crashes between the ledger append and the state flush?" into a
// seed-reproducible unit test (docs/ROBUSTNESS.md).
//
// Library code declares *injection sites* — named points where a fault could
// strike in production (a torn write batch, a dropped sync chunk, a crash
// between two storage writes) — by calling fault::Check(site) and acting on
// the returned verdict. A test arms a FaultPlan listing which sites fire,
// on which hit, with what probability, and with what action; everything is
// driven by one seed, so a failing schedule replays exactly.
//
// When no plan is armed (the production configuration), Check() is a single
// relaxed atomic load — bench/microbench.cpp prices it.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace nezha::fault {

/// What an armed site does to the caller.
enum class Action : std::uint8_t {
  kNone = 0,  ///< proceed normally
  kFail,      ///< report an error without side effects
  kCrash,     ///< abandon the operation mid-flight (process death)
  kTear,      ///< apply only the first `param` records of a batch
  kDrop,      ///< swallow the message/chunk (network loss)
  kDelay,     ///< deliver late by `param` simulated milliseconds
  kCorrupt,   ///< deliver with flipped bytes (mode selected by `param`)
  kTruncate,  ///< deliver with the tail cut off
  kDuplicate, ///< deliver twice (network duplication; net_plan.h)
  kReorder,   ///< deliver with seeded jitter that breaks FIFO (net_plan.h)
};

const char* ActionName(Action action);

/// Canonical site names, so tests and docs agree on the vocabulary.
/// (A site string not listed here still works; this is the registry of
/// everything the library currently wires.)
namespace sites {
inline constexpr char kKvWrite[] = "kvstore/write";
inline constexpr char kKvRestore[] = "kvstore/restore";
inline constexpr char kStateFlush[] = "statedb/flush";
inline constexpr char kLedgerAppend[] = "ledger/append_block";
inline constexpr char kCommitBeforeJournal[] = "node/commit/before_journal";
inline constexpr char kCommitAfterJournal[] = "node/commit/after_journal";
inline constexpr char kCommitBeforeFlush[] = "node/commit/before_flush";
inline constexpr char kCommitAfterFlush[] = "node/commit/after_flush";
inline constexpr char kSyncServeChunk[] = "statesync/server/chunk";
}  // namespace sites

/// The sites on the FullNode epoch-commit path, in the order they are hit —
/// what the crash-at-every-site recovery sweep iterates over.
const std::vector<std::string>& CommitPathSites();

/// One injection rule. A spec is *eligible* on a given hit of its site when
/// the hit number matches (`hit_number` counts from 1; 0 = every hit) and it
/// has fires left; an eligible spec then fires with `probability` (decided
/// by the plan's seeded RNG, so runs replay exactly).
struct Spec {
  std::string site;
  Action action = Action::kFail;
  std::uint64_t hit_number = 1;  ///< fire on the Nth Check() of this site; 0 = any
  double probability = 1.0;
  std::uint64_t param = 0;     ///< tear record index / delay ms / corrupt mode
  std::uint64_t max_fires = 1; ///< 0 = unlimited
};

/// A reproducible set of injection rules, driven by one seed.
class Plan {
 public:
  explicit Plan(std::uint64_t seed = 0xfa'17'5eedull) : seed_(seed) {}

  Plan& Add(Spec spec) {
    specs_.push_back(std::move(spec));
    return *this;
  }

  /// Shorthands for the common shapes.
  Plan& CrashAt(std::string_view site, std::uint64_t hit_number = 1) {
    return Add({std::string(site), Action::kCrash, hit_number, 1.0, 0, 1});
  }
  Plan& FailAt(std::string_view site, std::uint64_t hit_number = 1) {
    return Add({std::string(site), Action::kFail, hit_number, 1.0, 0, 1});
  }
  Plan& TearAt(std::string_view site, std::uint64_t record,
               std::uint64_t hit_number = 1) {
    return Add({std::string(site), Action::kTear, hit_number, 1.0, record, 1});
  }
  /// Probabilistic rules for flaky-network modelling (every hit eligible,
  /// unlimited fires).
  Plan& WithProbability(std::string_view site, Action action, double p,
                        std::uint64_t param = 0) {
    return Add({std::string(site), action, 0, p, param, 0});
  }

  std::uint64_t seed() const { return seed_; }
  const std::vector<Spec>& specs() const { return specs_; }

 private:
  std::uint64_t seed_;
  std::vector<Spec> specs_;
};

/// The verdict one Check() call returns.
struct Hit {
  Action action = Action::kNone;
  std::uint64_t param = 0;

  bool fired() const { return action != Action::kNone; }
};

/// Process-wide injector. Arm/Disarm bracket a test scenario; library code
/// only ever calls Check(). Checks are thread-safe; the armed slow path
/// takes one mutex (tests), the disarmed fast path is a relaxed load.
class Injector {
 public:
  static Injector& Global();

  /// Installs a plan (replacing any previous one) and zeroes hit counts.
  void Arm(Plan plan);
  void Disarm();
  bool Armed() const { return armed_.load(std::memory_order_relaxed); }

  /// The per-site query. Returns kNone when disarmed or no spec fires.
  Hit Check(std::string_view site);

  /// Hits observed per site since Arm() (tests discover which sites a code
  /// path crosses by arming an empty plan and reading these). Ordered map:
  /// callers iterate it into logs and assertions, and that output should not
  /// depend on hash-table layout.
  std::map<std::string, std::uint64_t> HitCounts() const;
  /// Total number of specs that fired since Arm().
  std::uint64_t FireCount() const;

 private:
  Injector() = default;
  Hit CheckSlow(std::string_view site) EXCLUDES(mutex_);

  std::atomic<bool> armed_{false};
  mutable Mutex mutex_;
  Plan plan_ GUARDED_BY(mutex_){0};
  std::uint64_t rng_state_ GUARDED_BY(mutex_) = 0;
  /// Per-spec fire counts.
  std::vector<std::uint64_t> fires_ GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::uint64_t> hits_ GUARDED_BY(mutex_);
  std::uint64_t total_fires_ GUARDED_BY(mutex_) = 0;
};

/// The hot-path query library code uses at a named site.
inline Hit Check(std::string_view site) {
  Injector& injector = Injector::Global();
  if (!injector.Armed()) return {};
  return injector.Check(site);
}

/// RAII plan scope for tests: arms on construction, disarms on destruction.
class ScopedPlan {
 public:
  explicit ScopedPlan(Plan plan) { Injector::Global().Arm(std::move(plan)); }
  ~ScopedPlan() { Injector::Global().Disarm(); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
};

/// The Status an injected crash surfaces as. Callers that hit a kCrash
/// verdict return CrashStatus(site) immediately — the "process" is dead from
/// that point; the test discards the node object and recovers a fresh one
/// from storage.
Status CrashStatus(std::string_view site);

/// True iff `status` came from an injected crash (as opposed to a real
/// error): recovery tests use it to tell the two apart.
bool IsInjectedCrash(const Status& status);

}  // namespace nezha::fault
