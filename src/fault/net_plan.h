// Deterministic network fault plane — the message-level sibling of the
// storage fault injector in fault.h (docs/ROBUSTNESS.md §5).
//
// The consensus simulations deliver every broadcast through a per-sim
// NetEmulator. A seeded NetPlan describes what the network does to each
// message, keyed by (src, dst, msg-kind) and simulated time:
//
//   * drop       — the delivery never happens (anti-entropy gossip or a
//                  partition heal must recover the block);
//   * delay      — the delivery lands `param_ms` later;
//   * reorder    — the delivery lands a seeded-uniform [0, param_ms) later,
//                  breaking FIFO order between messages of one sender;
//   * duplicate  — the delivery happens twice (second copy `param_ms`
//                  later); receivers must be idempotent;
//   * partition  — messages crossing an island boundary during
//                  [start_ms, heal_ms) are HELD and delivered after the
//                  heal, so a healed network always converges.
//
// Everything is driven by the plan's own seed (an Rng separate from the
// simulation's), so an EMPTY plan consumes no randomness and leaves every
// existing simulation trace byte-identical — the property the tier-1 suite
// pins. Byzantine NODE behaviour (equivocation, withholding, invalid
// blocks) is configured here too (ByzantineConfig) but interpreted by each
// simulation in its own protocol's terms.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "fault/fault.h"

namespace nezha::fault {

/// Message classes the consensus simulations route through the plane.
enum class MsgKind : std::uint8_t {
  kAny = 0,   ///< rule wildcard
  kVertex,    ///< DAG-Rider vertex broadcast
  kBlock,     ///< OHIE / tree-graph mined-block broadcast
  kGossip,    ///< anti-entropy pull transfer
};

const char* MsgKindName(MsgKind kind);

/// Rule wildcard for src/dst node ids.
inline constexpr std::int32_t kAnyNode = -1;

/// One message-level injection rule. A rule matches a message when src, dst
/// and kind agree (kAnyNode / MsgKind::kAny are wildcards) and the send
/// time falls in [from_ms, until_ms); a matching rule then fires with
/// `probability`, decided by the emulator's seeded RNG. Matching rules
/// compose in plan order (a delay and a duplicate rule can both apply);
/// a drop wins over everything else.
struct NetSpec {
  std::int32_t src = kAnyNode;
  std::int32_t dst = kAnyNode;
  MsgKind kind = MsgKind::kAny;
  Action action = Action::kDrop;  ///< kDrop / kDelay / kReorder / kDuplicate
  double probability = 1.0;
  double param_ms = 0;  ///< delay amount / reorder jitter bound / dup offset
  double from_ms = 0;   ///< active window [from_ms, until_ms)
  double until_ms = std::numeric_limits<double>::infinity();
};

/// One network partition: nodes in `island` cannot exchange messages with
/// nodes outside it during [start_ms, heal_ms). Crossing messages are held
/// and delivered at heal_ms + their original propagation delay, preserving
/// per-sender send order (the EventQueue's FIFO tie-break).
struct PartitionSpec {
  std::vector<std::uint32_t> island;
  double start_ms = 0;
  double heal_ms = 0;
};

/// A reproducible network chaos schedule, driven by one seed.
class NetPlan {
 public:
  explicit NetPlan(std::uint64_t seed = 0x4e'e7'fa'175eedull) : seed_(seed) {}

  NetPlan& Add(NetSpec spec) {
    specs_.push_back(spec);
    return *this;
  }

  /// Shorthands for the common rule shapes (all-window, any src/dst).
  NetPlan& Drop(double probability, MsgKind kind = MsgKind::kAny) {
    return Add({kAnyNode, kAnyNode, kind, Action::kDrop, probability, 0});
  }
  NetPlan& Delay(double probability, double ms, MsgKind kind = MsgKind::kAny) {
    return Add({kAnyNode, kAnyNode, kind, Action::kDelay, probability, ms});
  }
  NetPlan& Reorder(double probability, double jitter_ms,
                   MsgKind kind = MsgKind::kAny) {
    return Add(
        {kAnyNode, kAnyNode, kind, Action::kReorder, probability, jitter_ms});
  }
  NetPlan& Duplicate(double probability, double offset_ms = 1,
                     MsgKind kind = MsgKind::kAny) {
    return Add(
        {kAnyNode, kAnyNode, kind, Action::kDuplicate, probability, offset_ms});
  }
  NetPlan& Partition(std::vector<std::uint32_t> island, double start_ms,
                     double heal_ms) {
    partitions_.push_back({std::move(island), start_ms, heal_ms});
    return *this;
  }

  bool Empty() const { return specs_.empty() && partitions_.empty(); }
  std::uint64_t seed() const { return seed_; }
  const std::vector<NetSpec>& specs() const { return specs_; }
  const std::vector<PartitionSpec>& partitions() const { return partitions_; }

 private:
  std::uint64_t seed_;
  std::vector<NetSpec> specs_;
  std::vector<PartitionSpec> partitions_;
};

/// What the emulator did to the traffic it saw (per-sim; the same counts
/// are exported as nezha_net_chaos_total{sim,action}).
struct NetStats {
  std::uint64_t sent = 0;        ///< messages offered to the emulator
  std::uint64_t delivered = 0;   ///< scheduled deliveries (incl. duplicates)
  std::uint64_t dropped = 0;
  std::uint64_t delayed = 0;
  std::uint64_t reordered = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t held = 0;        ///< partition-crossing, delivered at heal
};

/// The per-simulation delivery hook. The simulation computes its normal
/// propagation delay (its own RNG; unchanged draws), then asks the emulator
/// when — and whether, and how often — the message actually arrives.
/// Single-threaded, like the discrete-event simulations that own it.
class NetEmulator {
 public:
  /// Pass-through emulator (empty plan).
  NetEmulator() : NetEmulator(NetPlan{}, "net") {}
  NetEmulator(NetPlan plan, std::string component);

  /// True while the plan has rules/partitions and Quiesce() has not run.
  bool Active() const { return active_ && !quiesced_; }

  /// Settlement switch: after Quiesce() every message passes through
  /// untouched. The simulations flip it when traffic generation stops —
  /// the "network heals eventually" assumption every convergence claim
  /// needs (a plan whose drop rules never end would otherwise starve the
  /// final anti-entropy rounds forever).
  void Quiesce() { quiesced_ = true; }

  /// Absolute delivery times for one message sent at `now` whose normal
  /// propagation delay is `base_delay_ms`. Empty = dropped; more than one
  /// entry = duplicated. All times are >= now.
  std::vector<double> Deliveries(std::uint32_t src, std::uint32_t dst,
                                 MsgKind kind, double now,
                                 double base_delay_ms);

  /// True when (src, dst) straddles an active partition boundary at `now`.
  bool Partitioned(std::uint32_t src, std::uint32_t dst, double now) const;

  const NetStats& stats() const { return stats_; }
  const NetPlan& plan() const { return plan_; }

 private:
  void Count(std::string_view action, std::uint64_t n = 1);

  NetPlan plan_;
  std::string component_;
  Rng rng_;
  NetStats stats_;
  bool active_ = false;
  bool quiesced_ = false;
};

/// Byzantine node behaviours the simulations can stage. Each simulation
/// maps these onto its own protocol:
///  * equivocate — emit two conflicting blocks/vertices for one slot
///    (DAG-Rider admission rejects the second; fork-choice protocols
///    resolve the fork deterministically);
///  * withhold — build blocks but broadcast them only at release_ms (or at
///    settlement when release_ms = 0), the block-withholding attack;
///  * invalid — broadcast structurally invalid blocks (tampered tx root,
///    duplicate transactions, forged hash, wrong-round ancestry); honest
///    admission must reject every one with the exact taxonomy reason.
enum class ByzBehavior : std::uint8_t {
  kNone = 0,
  kEquivocate,
  kWithhold,
  kInvalidBlock,
};

const char* ByzBehaviorName(ByzBehavior behavior);

struct ByzantineConfig {
  ByzBehavior behavior = ByzBehavior::kNone;
  std::vector<std::uint32_t> nodes;  ///< which node ids misbehave
  /// kWithhold: when the withheld blocks are finally broadcast
  /// (0 = only at end-of-run settlement).
  double release_ms = 0;

  bool Enabled() const {
    return behavior != ByzBehavior::kNone && !nodes.empty();
  }
  bool IsByzantine(std::uint32_t node) const {
    for (const std::uint32_t id : nodes) {
      if (id == node) return true;
    }
    return false;
  }
};

}  // namespace nezha::fault
