#include "fault/fault.h"

#include "common/rng.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace nezha::fault {

namespace {

/// Message prefix shared by every injected crash (IsInjectedCrash keys on
/// it; no real error path produces it).
constexpr std::string_view kCrashPrefix = "fault: injected crash at ";

}  // namespace

const char* ActionName(Action action) {
  switch (action) {
    case Action::kNone:
      return "none";
    case Action::kFail:
      return "fail";
    case Action::kCrash:
      return "crash";
    case Action::kTear:
      return "tear";
    case Action::kDrop:
      return "drop";
    case Action::kDelay:
      return "delay";
    case Action::kCorrupt:
      return "corrupt";
    case Action::kTruncate:
      return "truncate";
    case Action::kDuplicate:
      return "duplicate";
    case Action::kReorder:
      return "reorder";
  }
  return "?";
}

const std::vector<std::string>& CommitPathSites() {
  static const std::vector<std::string> kSites = {
      sites::kCommitBeforeJournal, sites::kCommitAfterJournal,
      sites::kCommitBeforeFlush,   sites::kKvWrite,
      sites::kCommitAfterFlush,
  };
  return kSites;
}

Injector& Injector::Global() {
  static Injector* injector = new Injector();
  return *injector;
}

void Injector::Arm(Plan plan) {
  MutexLock lock(mutex_);
  plan_ = std::move(plan);
  rng_state_ = plan_.seed();
  fires_.assign(plan_.specs().size(), 0);
  hits_.clear();
  total_fires_ = 0;
  armed_.store(true, std::memory_order_release);
}

void Injector::Disarm() {
  MutexLock lock(mutex_);
  armed_.store(false, std::memory_order_release);
}

Hit Injector::Check(std::string_view site) {
  if (!Armed()) return {};
  return CheckSlow(site);
}

Hit Injector::CheckSlow(std::string_view site) {
  Hit hit;
  {
    MutexLock lock(mutex_);
    if (!armed_.load(std::memory_order_relaxed)) return {};
    const std::uint64_t hit_number = ++hits_[std::string(site)];
    const auto& specs = plan_.specs();
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const Spec& spec = specs[i];
      if (spec.site != site) continue;
      if (spec.hit_number != 0 && spec.hit_number != hit_number) continue;
      if (spec.max_fires != 0 && fires_[i] >= spec.max_fires) continue;
      if (spec.probability < 1.0) {
        // SplitMix64 on the plan's rolling state: one deterministic draw
        // per eligible (spec, hit) pair.
        const double draw =
            static_cast<double>(SplitMix64(rng_state_) >> 11) * 0x1.0p-53;
        if (draw >= spec.probability) continue;
      }
      ++fires_[i];
      ++total_fires_;
      hit = {spec.action, spec.param};
      break;
    }
  }
  if (hit.fired()) {
    obs::Registry()
        .GetCounter("nezha_fault_injected_total",
                    {{"site", std::string(site)},
                     {"action", ActionName(hit.action)}})
        ->Inc();
  }
  return hit;
}

std::map<std::string, std::uint64_t> Injector::HitCounts() const {
  MutexLock lock(mutex_);
  return {hits_.begin(), hits_.end()};
}

std::uint64_t Injector::FireCount() const {
  MutexLock lock(mutex_);
  return total_fires_;
}

Status CrashStatus(std::string_view site) {
  // The "process" dies here: leave the black box behind. The dump is a
  // no-op unless a dump directory is configured (crash sweeps stay clean);
  // the nezha_flight_dumps_total{reason} counter ticks either way.
  obs::FlightRecorder::Global().DumpPostMortem("fault-crash:" +
                                               std::string(site));
  return Status::Aborted(std::string(kCrashPrefix) + std::string(site));
}

bool IsInjectedCrash(const Status& status) {
  return status.code() == StatusCode::kAborted &&
         status.message().compare(0, kCrashPrefix.size(), kCrashPrefix) == 0;
}

}  // namespace nezha::fault
