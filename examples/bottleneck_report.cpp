// bottleneck_report: runs a fixed-seed workload through the full pipeline
// with the pipeline profiler armed (src/obs/profiler.h) and answers "where
// did the cores go": a per-epoch efficiency table, a per-stage rollup
// (wall vs busy vs CPU, queue-wait p95, per-stage efficiency), the
// critical path with Amdahl speedup-if-parallelized estimates, and a
// top-3 bottleneck verdict. The per-epoch profiles are also written as
// JSON Lines (one EpochProfile object per line — the flight-record
// "profile" schema, docs/OBSERVABILITY.md) for offline diffing; CI
// archives that file from the bench-regression job.
//
// Usage: bottleneck_report [--scheme S] [--epochs N] [--block-size B]
//                          [--concurrency W] [--threads T] [--skew Z]
//                          [--seed X] [--jsonl PATH]
//   e.g.: ./build/examples/bottleneck_report --skew 0.99 --epochs 4
//
// The defaults reproduce the 4096-tx epoch the bench suite's threads
// dimension measures (512-tx blocks x 8 blocks, skew 0.6, seed 91000), so
// the dominant stage printed here can be cross-checked against
// bench/fig10_phase_breakdown's per-sub-phase latencies.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cc/scheduler.h"
#include "node/simulation.h"
#include "obs/profiler.h"

using namespace nezha;

namespace {

constexpr char kUsage[] =
    "usage: bottleneck_report [--scheme S] [--epochs N] [--block-size B]\n"
    "                         [--concurrency W] [--threads T] [--skew Z]\n"
    "                         [--seed X] [--jsonl PATH]\n"
    "  --scheme S       serial | occ | cg | nezha (default nezha)\n"
    "  --epochs N       epochs to simulate (default 4)\n"
    "  --block-size B   transactions per block (default 512)\n"
    "  --concurrency W  blocks per epoch (default 8 -> 4096 txs/epoch)\n"
    "  --threads T      pool workers (default 8)\n"
    "  --skew Z         Zipfian account skew (default 0.6)\n"
    "  --seed X         workload seed (default 91000)\n"
    "  --jsonl PATH     per-epoch EpochProfile JSON Lines\n"
    "                   (default bottleneck_report.jsonl)\n"
    "  --no-profile     kill-switch the profiler; prints only the mean\n"
    "                   epoch latency (the A/B overhead baseline,\n"
    "                   docs/OBSERVABILITY.md overhead table)\n";

/// Aggregate of one stage across every profiled epoch.
struct StageAgg {
  double wall_ms = 0;
  double busy_ms = 0;
  double cpu_ms = 0;
  std::uint64_t tasks = 0;
  double wait_p95_us = 0;  ///< max over epochs (worst observed)
  double eff_num = 0;      ///< wall-weighted efficiency numerator
};

}  // namespace

int main(int argc, char** argv) {
  SimulationConfig config;
  config.node.scheme = SchemeKind::kNezha;
  config.node.worker_threads = 8;
  config.epochs = 4;
  config.block_size = 512;
  config.block_concurrency = 8;
  config.workload.num_accounts = 10'000;
  config.workload.skew = 0.6;
  config.seed = 91'000;
  std::string jsonl_path = "bottleneck_report.jsonl";
  bool profile = true;

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--scheme") == 0) {
      auto scheme = ParseScheme(next());
      if (!scheme.ok()) {
        std::fprintf(stderr, "unknown scheme '%s'\n", argv[i]);
        return 1;
      }
      config.node.scheme = *scheme;
    } else if (std::strcmp(argv[i], "--epochs") == 0) {
      config.epochs = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--block-size") == 0) {
      config.block_size = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--concurrency") == 0) {
      config.block_concurrency = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      config.node.worker_threads = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--skew") == 0) {
      config.workload.skew = std::strtod(next(), nullptr);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      config.seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--jsonl") == 0) {
      jsonl_path = next();
    } else if (std::strcmp(argv[i], "--no-profile") == 0) {
      profile = false;
    } else {
      std::fputs(kUsage, stderr);
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 1;
    }
  }

  obs::Profiler().SetEnabled(profile);

  auto summary = RunSimulation(config);
  if (!summary.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 summary.status().ToString().c_str());
    return 1;
  }
  if (!profile) {
    // The A/B overhead baseline: identical run, every stamp gated off at
    // the Sampling() load. Compare against the mean span below.
    std::printf("profiler off: mean epoch latency %.3f ms over %zu epochs\n",
                summary->MeanTotalMs(), summary->reports.size());
    return 0;
  }

  bench::Header("Bottleneck report — where the cores went",
                std::string(SchemeName(config.node.scheme)) + ", " +
                    std::to_string(config.block_size *
                                   config.block_concurrency) +
                    " txs/epoch, skew " + bench::Fmt(config.workload.skew, 2) +
                    ", " + std::to_string(config.node.worker_threads) +
                    " workers");

  // Per-epoch table.
  bench::Row({"epoch", "span(ms)", "eff(%)", "tasks", "idle-gap(ms)",
              "gap-stage", "rss(MB)", "dominant"});
  std::size_t profiled = 0;
  for (const EpochReport& report : summary->reports) {
    const obs::EpochProfile& p = report.profile;
    if (p.span_ms <= 0) continue;
    ++profiled;
    bench::Row({bench::FmtInt(p.epoch), bench::Fmt(p.span_ms, 2),
                bench::Fmt(p.efficiency_pct, 1), bench::FmtInt(p.tasks),
                bench::Fmt(p.largest_idle_gap_ms, 2), p.idle_gap_stage,
                bench::Fmt(p.peak_rss_kb / 1024.0, 1), p.DominantStage()});
  }
  if (profiled == 0) {
    std::fprintf(stderr,
                 "bottleneck_report: no epoch profiles recorded (profiler "
                 "disabled?)\n");
    return 1;
  }
  // Same number --no-profile prints: the A/B overhead comparison.
  std::printf("\nprofiler on: mean epoch latency %.3f ms over %zu epochs\n",
              summary->MeanTotalMs(), summary->reports.size());

  // Per-stage rollup across the run. Stage set and order are deterministic
  // (interned ids in first-appearance order), so a std::map on the name
  // only affects display order.
  std::map<std::string, StageAgg> stages;
  for (const EpochReport& report : summary->reports) {
    for (const obs::StageProfile& s : report.profile.stages) {
      StageAgg& agg = stages[s.stage];
      agg.wall_ms += s.wall_ms;
      agg.busy_ms += s.busy_ms;
      agg.cpu_ms += s.cpu_ms;
      agg.tasks += s.tasks;
      agg.wait_p95_us = std::max(agg.wait_p95_us, s.wait_p95_us);
      agg.eff_num += s.efficiency_pct * s.wall_ms;
    }
  }
  std::printf("\nPer-stage rollup (%zu epochs):\n", profiled);
  bench::Row({"stage", "wall(ms)", "busy(ms)", "cpu(ms)", "eff(%)", "tasks",
              "wait-p95(us)"},
             16);
  for (const auto& [name, agg] : stages) {
    bench::Row({name, bench::Fmt(agg.wall_ms, 2), bench::Fmt(agg.busy_ms, 2),
                bench::Fmt(agg.cpu_ms, 2),
                bench::Fmt(agg.wall_ms > 0 ? agg.eff_num / agg.wall_ms : 0, 1),
                bench::FmtInt(agg.tasks), bench::Fmt(agg.wait_p95_us, 1)},
               16);
  }

  // Critical path of the last profiled epoch, plus the top-3 verdict
  // aggregated over every epoch (sum of per-epoch bottleneck wall).
  const obs::EpochProfile* last = nullptr;
  std::map<std::string, double> verdict_wall;
  std::map<std::string, double> verdict_amdahl;  ///< max over epochs
  for (const EpochReport& report : summary->reports) {
    if (report.profile.span_ms <= 0) continue;
    last = &report.profile;
    const obs::CriticalPathReport path =
        obs::AnalyzeCriticalPath(report.profile);
    for (const auto& node : path.bottlenecks) {
      verdict_wall[node.stage] += node.wall_ms;
      verdict_amdahl[node.stage] =
          std::max(verdict_amdahl[node.stage], node.amdahl_speedup);
    }
  }
  if (last != nullptr) {
    const obs::CriticalPathReport path = obs::AnalyzeCriticalPath(*last);
    std::printf("\nCritical path, epoch %llu (%.2f ms, %.1f%% of span):\n",
                static_cast<unsigned long long>(last->epoch),
                path.total_wall_ms, path.covered_pct);
    bench::Row({"stage", "wall(ms)", "cpu(ms)", "eff(%)", "amdahl(x)"}, 16);
    for (const auto& node : path.chain) {
      bench::Row({node.stage, bench::Fmt(node.wall_ms, 2),
                  bench::Fmt(node.cpu_ms, 2),
                  bench::Fmt(node.efficiency_pct, 1),
                  bench::Fmt(node.amdahl_speedup, 2)},
                 16);
    }
  }

  // Phase-level dominant stage: depth-0 spans are the pipeline envelopes
  // (validate / execute / cc / commit), the same partition
  // bench/fig10_phase_breakdown measures — the two reports must name the
  // same dominant phase on the same workload.
  std::map<std::string, double> phase_wall;
  for (const EpochReport& report : summary->reports) {
    for (const obs::StageSpan& span : report.profile.spans) {
      if (span.depth != 0) continue;
      phase_wall[std::string(obs::StageName(span.stage))] +=
          (span.end_us - span.start_us) / 1000.0;
    }
  }
  std::string dominant_phase;
  double dominant_phase_ms = 0;
  for (const auto& [name, wall] : phase_wall) {
    if (wall > dominant_phase_ms) {
      dominant_phase_ms = wall;
      dominant_phase = name;
    }
  }

  // The verdict: top-3 bottleneck stages by total critical-path wall.
  std::vector<std::pair<std::string, double>> ranked(verdict_wall.begin(),
                                                     verdict_wall.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (ranked.size() > 3) ranked.resize(3);
  std::printf("\nVerdict — top bottlenecks over %zu epochs:\n", profiled);
  int rank = 0;
  for (const auto& [name, wall] : ranked) {
    std::printf("  %d. %-16s %8.2f ms on the critical path "
                "(speedup if parallelized: %.2fx)\n",
                ++rank, name.c_str(), wall, verdict_amdahl[name]);
  }
  if (!dominant_phase.empty()) {
    std::printf("  dominant phase: %s (%.2f ms total) — cross-check "
                "bench/fig10_phase_breakdown\n",
                dominant_phase.c_str(), dominant_phase_ms);
  }

  // JSONL export: one EpochProfile object per line.
  if (!jsonl_path.empty()) {
    std::FILE* f = std::fopen(jsonl_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", jsonl_path.c_str());
      return 1;
    }
    for (const EpochReport& report : summary->reports) {
      if (report.profile.span_ms <= 0) continue;
      const std::string line = report.profile.ToJson();
      std::fwrite(line.data(), 1, line.size(), f);
      std::fputc('\n', f);
    }
    std::fclose(f);
    std::printf("\n[jsonl] wrote %zu epoch profiles to %s\n", profiled,
                jsonl_path.c_str());
  }
  return 0;
}
