// latency_report: runs N epochs through the full pipeline with the
// per-transaction lifecycle tracer armed and prints the epoch-by-epoch
// latency decomposition — end-to-end commit latency percentiles plus the
// mean wait at every stage hand-off (include / confirm / schedule /
// execute / commit) and the top-K slowest transactions with their
// per-stage breakdown (docs/OBSERVABILITY.md, "Transaction lifecycle").
//
// Usage: latency_report [--scheme S] [--epochs N] [--block-size B]
//                       [--concurrency W] [--skew Z] [--json PATH]
//   e.g.: ./build/examples/latency_report --scheme nezha --epochs 8
//
// --json PATH writes one EpochLatencySummary JSON object per line — the
// same "latency" object the flight recorder embeds per epoch.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "cc/scheduler.h"
#include "node/simulation.h"
#include "obs/tx_lifecycle.h"

using namespace nezha;

namespace {

constexpr char kUsage[] =
    "usage: latency_report [--scheme S] [--epochs N] [--block-size B]\n"
    "                      [--concurrency W] [--skew Z] [--json PATH]\n"
    "  --scheme S       serial | occ | cg | nezha (default nezha)\n"
    "  --epochs N       epochs to simulate (default 8)\n"
    "  --block-size B   transactions per block (default 200)\n"
    "  --concurrency W  blocks per epoch (default 4)\n"
    "  --skew Z         Zipfian account skew (default 0.6)\n"
    "  --json PATH      per-epoch latency summaries as JSON Lines\n";

void PrintWaitRow(const obs::EpochLatencySummary& latency) {
  for (std::size_t w = 0; w < obs::kNumStageWaits; ++w) {
    const obs::StageWaitSummary& wait = latency.waits[w];
    if (wait.count == 0) continue;
    std::printf("    wait %-9s mean %8.3f ms  p95 %8.3f ms  max %8.3f ms\n",
                obs::StageWaitName(w), wait.mean_ms, wait.p95_ms,
                wait.max_ms);
  }
}

}  // namespace

int main(int argc, char** argv) {
  SimulationConfig config;
  config.node.scheme = SchemeKind::kNezha;
  config.block_concurrency = 4;
  config.epochs = 8;
  config.workload.num_accounts = 10'000;
  config.workload.skew = 0.6;
  config.block_size = 200;
  config.seed = 2026;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--scheme") == 0) {
      auto scheme = ParseScheme(next());
      if (!scheme.ok()) {
        std::fprintf(stderr, "unknown scheme '%s'\n", argv[i]);
        return 1;
      }
      config.node.scheme = *scheme;
    } else if (std::strcmp(argv[i], "--epochs") == 0) {
      config.epochs = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--block-size") == 0) {
      config.block_size = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--concurrency") == 0) {
      config.block_concurrency = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--skew") == 0) {
      config.workload.skew = std::strtod(next(), nullptr);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = next();
    } else {
      std::fputs(kUsage, stderr);
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 1;
    }
  }

  obs::Lifecycle().SetEnabled(true);
  obs::Lifecycle().Clear();

  auto summary = RunSimulation(config);
  if (!summary.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 summary.status().ToString().c_str());
    return 1;
  }

  std::printf("# %s: %zu epochs, %zu txs, %zu committed, abort rate %.2f%%\n",
              SchemeName(config.node.scheme), summary->reports.size(),
              summary->TotalTxs(), summary->TotalCommitted(),
              summary->AbortRate() * 100);

  FILE* json = nullptr;
  if (!json_path.empty()) {
    json = std::fopen(json_path.c_str(), "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
  }

  for (const EpochReport& report : summary->reports) {
    const obs::EpochLatencySummary& latency = report.latency;
    if (latency.tracked == 0) continue;
    std::printf(
        "epoch %-4llu  %4zu txs (%zu committed, %zu aborted)  "
        "e2e p50 %8.3f ms  p95 %8.3f ms  p99 %8.3f ms  max %8.3f ms\n",
        static_cast<unsigned long long>(latency.epoch), latency.tracked,
        latency.committed, latency.aborted, latency.e2e.p50_ms,
        latency.e2e.p95_ms, latency.e2e.p99_ms, latency.e2e.max_ms);
    PrintWaitRow(latency);
    for (const obs::EpochLatencySummary::SlowTx& slow : latency.slowest) {
      std::printf("    slow tx %-4u e2e %8.3f ms", slow.tx, slow.e2e_ms);
      for (std::size_t w = 0; w < obs::kNumStageWaits; ++w) {
        if (slow.wait_ms[w] < 0) continue;
        std::printf("  %s %.3f", obs::StageWaitName(w), slow.wait_ms[w]);
      }
      std::printf("\n");
    }
    if (json != nullptr) {
      const std::string line = latency.ToJson();
      std::fprintf(json, "%s\n", line.c_str());
    }
  }

  if (json != nullptr) {
    std::fclose(json);
    std::fprintf(stderr, "# wrote %zu latency summaries to %s\n",
                 summary->reports.size(), json_path.c_str());
  }
  return 0;
}
