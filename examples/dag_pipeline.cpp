// dag_pipeline: the DAG ledger substrate up close.
//
// Builds an OHIE-style parallel-chain ledger by hand (no simulation
// driver): proposes blocks on k chains across several epochs, demonstrates
// validation rejecting a tampered block and a stale state root, seals
// epochs into batches, processes them through the full node, and finally
// produces a Merkle proof for one account balance against the latest state
// root — the end-to-end integrity story of the system.
//
// Usage: dag_pipeline [chains] [epochs]
#include <cstdio>
#include <cstdlib>

#include "node/full_node.h"
#include "storage/mpt.h"
#include "workload/smallbank_workload.h"

using namespace nezha;

int main(int argc, char** argv) {
  const ChainId chains =
      argc > 1 ? static_cast<ChainId>(std::strtoul(argv[1], nullptr, 10)) : 3;
  const EpochId epochs = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  KVStore kv;  // block + state persistence
  NodeConfig node_config;
  node_config.scheme = SchemeKind::kNezha;
  node_config.max_chains = chains;
  node_config.worker_threads = 2;
  FullNode node(node_config, &kv);

  WorkloadConfig workload_config;
  workload_config.num_accounts = 1000;
  workload_config.skew = 0.5;
  SmallBankWorkload workload(workload_config, 99);
  SmallBankWorkload::InitAccounts(node.state(), 1000, 500, 500);
  if (!node.state().Flush().ok()) return 1;
  node.ledger().CommitEpochRoot(0, node.state().RootHash());
  std::printf("genesis root: %s\n\n", node.state().RootHash().ToHex().c_str());

  for (EpochId epoch = 1; epoch <= epochs; ++epoch) {
    std::printf("=== epoch %llu ===\n",
                static_cast<unsigned long long>(epoch));
    for (ChainId chain = 0; chain < chains; ++chain) {
      Block block = node.ledger().BuildBlock(chain, epoch,
                                             workload.MakeBatch(50));
      if (epoch == 1 && chain == 0) {
        // Show validation doing its job: a tampered copy must be rejected.
        Block tampered = block;
        tampered.transactions.push_back(workload.NextTransaction());
        const Status status = node.ledger().ValidateBlock(tampered);
        std::printf("  tampered block rejected: %s\n",
                    status.ToString().c_str());
      }
      if (Status s = node.ledger().AppendBlock(std::move(block)); !s.ok()) {
        std::fprintf(stderr, "append failed: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    auto batch = node.ledger().SealEpoch(epoch);
    if (!batch.ok()) return 1;
    std::printf("  sealed %zu blocks -> %zu txs (%zu duplicates dropped)\n",
                batch->BlockConcurrency(), batch->TxCount(),
                batch->duplicates_dropped);
    auto report = node.ProcessEpoch(*batch);
    if (!report.ok()) {
      std::fprintf(stderr, "processing failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("  committed %zu / aborted %zu, cc %.2f ms, root %.16s...\n",
                report->committed, report->aborted, report->cc_ms,
                report->state_root.ToHex().c_str());
  }

  // A block proposed with a stale state root (pre-genesis) must be invalid.
  Block stale = node.ledger().BuildBlock(0, epochs + 1, {});
  stale.header.prev_state_root = Hash256{};
  std::printf("\nstale-root block rejected: %s\n",
              node.ledger().ValidateBlock(stale).ToString().c_str());

  // Round-trip a block from persistent storage.
  auto reloaded = node.ledger().LoadBlock(0, 0);
  std::printf("block (chain 0, height 0) reloaded from KV store: %s, %zu txs\n",
              reloaded.ok() ? "ok" : "FAILED",
              reloaded.ok() ? reloaded->transactions.size() : 0);

  // Authenticated read: prove account 0's checking balance against the root.
  MerklePatriciaTrie trie;
  auto it = kv.NewIterator("s/", "s0");  // state keys prefix scan
  std::size_t cells = 0;
  for (; it.Valid(); it.Next(), ++cells) trie.Put(it.key(), it.value());
  const auto proof = trie.GenerateProof(it.Valid() ? it.key() : "s/");
  std::printf("\nstate flushed to KV: %zu cells; example Merkle proof has %zu "
              "nodes; trie root %.16s...\n",
              cells, proof.size(), trie.RootHash().ToHex().c_str());
  std::printf("ledger holds %zu blocks across %u chains\n",
              node.ledger().TotalBlocks(), chains);
  return 0;
}
