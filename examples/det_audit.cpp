// det_audit: the determinism auditor's replay differ as a CLI
// (docs/ANALYSIS.md "Determinism auditor").
//
// Runs the scheduling pipeline (ACG -> rank division -> sorting ->
// group-parallel execution) twice over the same seeded workload — side A
// and side B, each with its own scheme / thread count / ACG shard count /
// ablation flags — records the canonical checkpoint digest at every stage
// boundary, and diffs the two runs checkpoint-by-checkpoint. On
// divergence it prints the FIRST divergent (epoch, stage) and the first
// differing canonical line; exit code 1. Identical runs exit 0.
//
// Examples:
//   det_audit                            # 1-thread serial build vs 4-thread
//                                        # 4-shard build: must match
//   det_audit --rank-policy-b=naive      # ablation: diverges at stage rank
//   det_audit --no-reorder-b             # ablation: diverges at stage sort
//   det_audit --perturb=execute          # injected bug: diverges at execute
//
// Usage: det_audit [--scheme-a=S] [--scheme-b=S] [--threads-a=N]
//                  [--threads-b=N] [--shards-a=N] [--shards-b=N]
//                  [--rank-policy-b=naive] [--no-reorder-b]
//                  [--perturb=acg|rank|sort|execute] [--epochs=N]
//                  [--txs=N] [--keys=N] [--skew=Z] [--seed=N] [--quiet]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/det_checkpoint.h"
#include "cc/cg/cg_scheduler.h"
#include "cc/nezha/nezha_scheduler.h"
#include "cc/nezha/parallel_executor.h"
#include "cc/occ/occ_scheduler.h"
#include "cc/serial/serial_scheduler.h"
#include "common/thread_pool.h"
#include "storage/state_db.h"
#include "workload/kv_workload.h"

using namespace nezha;
using analysis::DetCheckpointRecorder;
using analysis::DetStage;
using analysis::EpochCheckpoints;

namespace {

struct SideConfig {
  std::string scheme = "nezha";
  std::size_t threads = 1;
  std::size_t shards = 0;  ///< Nezha ACG shards (0 = serial/unsharded build)
  RankPolicy rank_policy = RankPolicy::kNezha;
  bool reorder = true;
};

std::unique_ptr<Scheduler> MakeSideScheduler(const SideConfig& side,
                                             ThreadPool* pool) {
  if (side.scheme == "serial") return std::make_unique<SerialScheduler>();
  if (side.scheme == "occ") return std::make_unique<OCCScheduler>();
  if (side.scheme == "cg") return std::make_unique<CGScheduler>();
  NezhaOptions options;
  options.enable_reordering =
      side.scheme == "nezha-noreorder" ? false : side.reorder;
  options.rank_policy = side.rank_policy;
  options.pool = side.shards > 0 || side.threads > 1 ? pool : nullptr;
  options.acg_shards = side.shards;
  return std::make_unique<NezhaScheduler>(options);
}

std::vector<EpochCheckpoints> RunSide(const SideConfig& side,
                                      std::size_t epochs, std::size_t txs,
                                      std::uint64_t keys, double skew,
                                      std::uint64_t seed) {
  DetCheckpointRecorder& det = DetCheckpointRecorder::Global();
  det.Clear();
  ThreadPool pool(side.threads);
  for (std::size_t e = 1; e <= epochs; ++e) {
    KVWorkloadConfig config;
    config.num_keys = keys;
    config.skew = skew;
    config.blind_write_fraction = 0.25;
    const std::vector<ReadWriteSet> rwsets =
        KVWorkload(config, seed + e).MakeBatch(txs);
    det.BeginEpoch(e, side.scheme);
    auto scheduler = MakeSideScheduler(side, &pool);
    auto schedule = scheduler->BuildSchedule(rwsets);
    if (!schedule.ok()) {
      std::fprintf(stderr, "epoch %zu: BuildSchedule failed: %s\n", e,
                   schedule.status().ToString().c_str());
      std::exit(2);
    }
    StateDB db;
    const StateSnapshot snapshot = db.MakeSnapshot(0);
    ExecuteScheduleParallel(pool, db, snapshot, *schedule, rwsets);
  }
  return det.Snapshot();
}

std::optional<DetStage> ParseStage(const std::string& name) {
  for (std::size_t s = 0; s < analysis::kNumDetStages; ++s) {
    const auto stage = static_cast<DetStage>(s);
    if (name == analysis::DetStageName(stage)) return stage;
  }
  return std::nullopt;
}

bool FlagValue(const char* arg, const char* name, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  SideConfig a;
  SideConfig b;
  b.threads = 4;
  b.shards = 4;
  std::size_t epochs = 3;
  std::size_t txs = 256;
  std::uint64_t keys = 400;
  double skew = 0.9;
  std::uint64_t seed = 7;
  std::optional<DetStage> perturb;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (FlagValue(argv[i], "--scheme-a", &v)) {
      a.scheme = v;
    } else if (FlagValue(argv[i], "--scheme-b", &v)) {
      b.scheme = v;
    } else if (FlagValue(argv[i], "--threads-a", &v)) {
      a.threads = std::strtoul(v.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--threads-b", &v)) {
      b.threads = std::strtoul(v.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--shards-a", &v)) {
      a.shards = std::strtoul(v.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--shards-b", &v)) {
      b.shards = std::strtoul(v.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--rank-policy-b", &v)) {
      b.rank_policy = v == "naive" ? RankPolicy::kNaive : RankPolicy::kNezha;
    } else if (std::strcmp(argv[i], "--no-reorder-b") == 0) {
      b.reorder = false;
    } else if (FlagValue(argv[i], "--perturb", &v)) {
      perturb = ParseStage(v);
      if (!perturb.has_value()) {
        std::fprintf(stderr, "unknown stage '%s'\n", v.c_str());
        return 2;
      }
    } else if (FlagValue(argv[i], "--epochs", &v)) {
      epochs = std::strtoul(v.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--txs", &v)) {
      txs = std::strtoul(v.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--keys", &v)) {
      keys = std::strtoull(v.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--skew", &v)) {
      skew = std::strtod(v.c_str(), nullptr);
    } else if (FlagValue(argv[i], "--seed", &v)) {
      seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (see header comment)\n",
                   argv[i]);
      return 2;
    }
  }

  DetCheckpointRecorder& det = DetCheckpointRecorder::Global();
  det.SetEnabled(true);
  det.SetCapture(true);

  std::printf("side A: scheme=%s threads=%zu shards=%zu\n", a.scheme.c_str(),
              a.threads, a.shards);
  std::printf("side B: scheme=%s threads=%zu shards=%zu%s%s%s\n",
              b.scheme.c_str(), b.threads, b.shards,
              b.rank_policy == RankPolicy::kNaive ? " rank-policy=naive" : "",
              b.reorder ? "" : " reorder=off",
              perturb.has_value() ? " (perturbed)" : "");
  std::printf("workload: epochs=%zu txs=%zu keys=%llu skew=%.2f seed=%llu\n",
              epochs, txs, static_cast<unsigned long long>(keys), skew,
              static_cast<unsigned long long>(seed));

  const auto run_a = RunSide(a, epochs, txs, keys, skew, seed);
  if (perturb.has_value()) det.PerturbStageForTest(*perturb);
  const auto run_b = RunSide(b, epochs, txs, keys, skew, seed);
  det.PerturbStageForTest(std::nullopt);

  // A perturbation that never fired (the requested stage is not recorded by
  // this pipeline — e.g. 'consensus' or 'commit', which only full-node /
  // sim runs emit) must not masquerade as a clean "no divergence".
  if (perturb.has_value()) {
    bool fired = false;
    for (const auto& epoch : run_b) fired = fired || epoch.Has(*perturb);
    if (!fired) {
      std::fprintf(stderr,
                   "--perturb=%s: stage is never recorded by this pipeline "
                   "(det_audit drives schedule+execute only); nothing was "
                   "perturbed\n",
                   analysis::DetStageName(*perturb));
      return 2;
    }
  }

  if (!quiet) {
    std::printf("\n%-6s %-10s %-14s %-14s\n", "epoch", "stage", "side A",
                "side B");
    for (std::size_t e = 0; e < run_a.size() && e < run_b.size(); ++e) {
      for (std::size_t s = 0; s < analysis::kNumDetStages; ++s) {
        const auto stage = static_cast<DetStage>(s);
        if (!run_a[e].Has(stage) && !run_b[e].Has(stage)) continue;
        const std::string ha =
            run_a[e].Has(stage) ? run_a[e].Digest(stage).ToHex().substr(0, 12)
                                : "<absent>";
        const std::string hb =
            run_b[e].Has(stage) ? run_b[e].Digest(stage).ToHex().substr(0, 12)
                                : "<absent>";
        std::printf("%-6llu %-10s %-14s %-14s %s\n",
                    static_cast<unsigned long long>(run_a[e].epoch),
                    analysis::DetStageName(stage), ha.c_str(), hb.c_str(),
                    ha == hb ? "" : "<-- differs");
      }
    }
  }

  const analysis::DivergenceReport report =
      analysis::DiffCheckpoints(run_a, run_b);
  if (!report.diverged) {
    std::printf("\nno divergence: %zu epochs, every recorded stage digest "
                "matches\n",
                run_a.size());
    return 0;
  }
  std::printf("\nFIRST DIVERGENCE: %s\n", report.summary.c_str());
  if (report.line != 0) {
    std::printf("  stage %s, canonical line %zu:\n    A: %s\n    B: %s\n",
                analysis::DetStageName(report.stage), report.line,
                report.line_a.c_str(), report.line_b.c_str());
  }
  std::printf("  upstream stages matched: ");
  for (const DetStage stage : report.matched_stages) {
    std::printf("%s ", analysis::DetStageName(stage));
  }
  std::printf("\n");
  return 1;
}
