// chaos_consensus: N-node consensus under a seeded network fault plan and
// an optional Byzantine cast, with a convergence verdict.
//
// Picks one consensus scheme (dagrider / ohie / treegraph), arms the
// chaos plane (drop / delay / duplicate / partition-heal) and a Byzantine
// behaviour (equivocate / withhold / invalid), runs the discrete-event
// simulation, then checks that every replica holds the same committed
// order and — through the deferred-execution bridge, serializability
// oracle forced ON — the same final state root. Same seed, same chaos,
// same verdict: every run replays.
//
// Usage: chaos_consensus [--scheme dagrider|ohie|treegraph] [--nodes N]
//                        [--duration-ms MS] [--seed S] [--chaos-seed S]
//                        [--drop P] [--delay-ms MS] [--dup P]
//                        [--partition-start MS] [--partition-heal MS]
//                        [--byz none|equivocate|withhold|invalid]
//                        [--byz-node ID] [--release-ms MS] [--gossip-ms MS]
//   e.g.: ./build/examples/chaos_consensus --scheme ohie --drop 0.2
//             --byz invalid --byz-node 2
//
// Note (docs/ROBUSTNESS.md): DAG-Rider equivocation must only be paired
// with order-preserving chaos (deterministic delay, partitions) — the tool
// warns if you combine it with --drop.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cc/scheduler.h"
#include "consensus/dagrider_sim.h"
#include "consensus/ohie_sim.h"
#include "consensus/treegraph_sim.h"
#include "fault/net_plan.h"
#include "node/dagrider_bridge.h"
#include "node/ohie_bridge.h"
#include "node/treegraph_bridge.h"
#include "obs/metrics.h"
#include "workload/smallbank_workload.h"

using namespace nezha;

namespace {

struct Options {
  std::string scheme = "dagrider";
  std::uint32_t nodes = 4;
  double duration_ms = 15'000;
  std::uint64_t seed = 1;
  std::uint64_t chaos_seed = 42;
  double drop = 0;
  double delay_ms = 0;
  double dup = 0;
  double partition_start = 0;
  double partition_heal = 0;
  std::string byz = "none";
  std::uint32_t byz_node = 0;
  double release_ms = 0;
  double gossip_ms = 500;
};

void PrintNetStats(const fault::NetStats& net) {
  std::printf(
      "  network: sent=%llu delivered=%llu dropped=%llu delayed=%llu "
      "duplicated=%llu held=%llu\n",
      static_cast<unsigned long long>(net.sent),
      static_cast<unsigned long long>(net.delivered),
      static_cast<unsigned long long>(net.dropped),
      static_cast<unsigned long long>(net.delayed),
      static_cast<unsigned long long>(net.duplicated),
      static_cast<unsigned long long>(net.held));
}

void PrintRejections(const char* component) {
  const auto snapshot = obs::Registry().Snapshot();
  for (const auto& sample : snapshot.samples) {
    if (sample.name != "nezha_invalid_block_total") continue;
    if (sample.labels.find(std::string("component=\"") + component + "\"") ==
        std::string::npos) {
      continue;
    }
    std::printf("  rejected %s %.0f\n", sample.labels.c_str(), sample.value);
  }
}

int Verdict(bool orders_agree, bool roots_agree) {
  std::printf("  committed orders agree:  %s\n", orders_agree ? "yes" : "NO");
  std::printf("  state roots agree:       %s\n", roots_agree ? "yes" : "NO");
  std::printf("verdict: %s\n",
              orders_agree && roots_agree ? "CONVERGED" : "DIVERGED");
  return orders_agree && roots_agree ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--scheme") == 0) {
      opt.scheme = next();
    } else if (std::strcmp(argv[i], "--nodes") == 0) {
      opt.nodes = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--duration-ms") == 0) {
      opt.duration_ms = std::strtod(next(), nullptr);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--chaos-seed") == 0) {
      opt.chaos_seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--drop") == 0) {
      opt.drop = std::strtod(next(), nullptr);
    } else if (std::strcmp(argv[i], "--delay-ms") == 0) {
      opt.delay_ms = std::strtod(next(), nullptr);
    } else if (std::strcmp(argv[i], "--dup") == 0) {
      opt.dup = std::strtod(next(), nullptr);
    } else if (std::strcmp(argv[i], "--partition-start") == 0) {
      opt.partition_start = std::strtod(next(), nullptr);
    } else if (std::strcmp(argv[i], "--partition-heal") == 0) {
      opt.partition_heal = std::strtod(next(), nullptr);
    } else if (std::strcmp(argv[i], "--byz") == 0) {
      opt.byz = next();
    } else if (std::strcmp(argv[i], "--byz-node") == 0) {
      opt.byz_node =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--release-ms") == 0) {
      opt.release_ms = std::strtod(next(), nullptr);
    } else if (std::strcmp(argv[i], "--gossip-ms") == 0) {
      opt.gossip_ms = std::strtod(next(), nullptr);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }

  fault::NetPlan plan(opt.chaos_seed);
  if (opt.drop > 0) plan.Drop(opt.drop);
  if (opt.delay_ms > 0) plan.Delay(1.0, opt.delay_ms);
  if (opt.dup > 0) plan.Duplicate(opt.dup, 25);
  if (opt.partition_heal > opt.partition_start) {
    // First half of the cluster vs the rest.
    std::vector<std::uint32_t> island;
    for (std::uint32_t n = 0; n < opt.nodes / 2; ++n) island.push_back(n);
    plan.Partition(island, opt.partition_start, opt.partition_heal);
  }

  fault::ByzantineConfig byzantine;
  if (opt.byz == "equivocate") {
    byzantine.behavior = fault::ByzBehavior::kEquivocate;
  } else if (opt.byz == "withhold") {
    byzantine.behavior = fault::ByzBehavior::kWithhold;
  } else if (opt.byz == "invalid") {
    byzantine.behavior = fault::ByzBehavior::kInvalidBlock;
  } else if (opt.byz != "none") {
    std::fprintf(stderr, "unknown --byz %s\n", opt.byz.c_str());
    return 1;
  }
  if (byzantine.behavior != fault::ByzBehavior::kNone) {
    byzantine.nodes = {opt.byz_node};
    byzantine.release_ms = opt.release_ms;
  }
  if (opt.scheme == "dagrider" &&
      byzantine.behavior == fault::ByzBehavior::kEquivocate &&
      opt.drop > 0) {
    std::fprintf(stderr,
                 "warning: dagrider equivocation + probabilistic drop is not "
                 "order-preserving; replicas may legitimately diverge\n");
  }

  WorkloadConfig wl;
  wl.num_accounts = 500;
  wl.skew = 0.6;
  SmallBankWorkload workload(wl, 77);
  const auto tx_source = [&workload](NodeId) {
    return workload.MakeBatch(5);
  };

  std::printf("chaos_consensus: scheme=%s nodes=%u duration=%.0fms seed=%llu "
              "byz=%s\n",
              opt.scheme.c_str(), opt.nodes, opt.duration_ms,
              static_cast<unsigned long long>(opt.seed), opt.byz.c_str());

  // The serializability oracle stays on for every bridge execution below.
  SetScheduleVerification(true);

  bool orders_agree = true;
  bool roots_agree = true;
  if (opt.scheme == "dagrider") {
    DagRiderSimConfig config;
    config.num_nodes = opt.nodes;
    config.duration_ms = opt.duration_ms;
    config.seed = opt.seed;
    config.net_plan = plan;
    config.byzantine = byzantine;
    config.gossip_interval_ms = opt.gossip_ms;
    DagRiderSimulation sim(config, tx_source);
    sim.Run();
    std::printf("  emitted=%zu committed=%zu batches=%zu byz(eq=%zu wh=%zu "
                "inv=%zu)\n",
                sim.stats().vertices_emitted, sim.stats().committed_vertices,
                sim.stats().committed_batches, sim.stats().byz_equivocations,
                sim.stats().byz_withheld, sim.stats().byz_invalid);
    PrintNetStats(sim.net().stats());
    PrintRejections("dagrider");
    const auto& ref = sim.node(0).CommittedSequence();
    for (std::size_t i = 1; i < sim.num_nodes(); ++i) {
      const auto& seq = sim.node(i).CommittedSequence();
      if (seq.size() != ref.size()) orders_agree = false;
    }
    Hash256 ref_root{};
    for (std::size_t i = 0; i < sim.num_nodes(); ++i) {
      DagRiderDeferredExecutor executor(DeferredExecConfig{});
      auto reports = executor.CatchUp(sim.node(i));
      if (!reports.ok()) {
        std::fprintf(stderr, "node %zu: %s\n", i,
                     reports.status().ToString().c_str());
        roots_agree = false;
        continue;
      }
      const Hash256 root = executor.state().RootHash();
      if (i == 0) {
        ref_root = root;
      } else if (root != ref_root) {
        roots_agree = false;
      }
    }
  } else if (opt.scheme == "ohie") {
    OhieSimConfig config;
    config.num_nodes = opt.nodes;
    config.duration_ms = opt.duration_ms;
    config.seed = opt.seed;
    config.net_plan = plan;
    config.byzantine = byzantine;
    config.gossip_interval_ms = opt.gossip_ms;
    OhieSimulation sim(config, tx_source);
    sim.Run();
    std::printf("  mined=%zu confirmed=%zu forked=%zu byz(eq=%zu wh=%zu "
                "inv=%zu)\n",
                sim.stats().blocks_mined, sim.stats().confirmed_blocks,
                sim.stats().forked_blocks, sim.stats().byz_equivocations,
                sim.stats().byz_withheld, sim.stats().byz_invalid);
    PrintNetStats(sim.net().stats());
    PrintRejections("ohie");
    const auto ref = sim.node(0).ConfirmedOrder();
    for (std::size_t i = 1; i < sim.num_nodes(); ++i) {
      if (sim.node(i).ConfirmedOrder().size() != ref.size()) {
        orders_agree = false;
      }
    }
    Hash256 ref_root{};
    for (std::size_t i = 0; i < sim.num_nodes(); ++i) {
      OhieDeferredExecutor executor(OhieBridgeConfig{});
      auto reports = executor.CatchUp(sim.node(i));
      if (!reports.ok()) {
        std::fprintf(stderr, "node %zu: %s\n", i,
                     reports.status().ToString().c_str());
        roots_agree = false;
        continue;
      }
      const Hash256 root = executor.state().RootHash();
      if (i == 0) {
        ref_root = root;
      } else if (root != ref_root) {
        roots_agree = false;
      }
    }
  } else if (opt.scheme == "treegraph") {
    TreeGraphSimConfig config;
    config.num_nodes = opt.nodes;
    config.duration_ms = opt.duration_ms;
    config.seed = opt.seed;
    config.net_plan = plan;
    config.byzantine = byzantine;
    config.gossip_interval_ms = opt.gossip_ms;
    TreeGraphSimulation sim(config, tx_source);
    sim.Run();
    std::printf("  mined=%zu epochs=%zu confirmed=%zu byz(eq=%zu wh=%zu "
                "inv=%zu)\n",
                sim.stats().blocks_mined, sim.stats().confirmed_epochs,
                sim.stats().confirmed_blocks, sim.stats().byz_equivocations,
                sim.stats().byz_withheld, sim.stats().byz_invalid);
    PrintNetStats(sim.net().stats());
    PrintRejections("treegraph");
    const auto ref = sim.node(0).ConfirmedEpochs();
    for (std::size_t i = 1; i < sim.num_nodes(); ++i) {
      if (sim.node(i).ConfirmedEpochs().size() != ref.size()) {
        orders_agree = false;
      }
    }
    Hash256 ref_root{};
    for (std::size_t i = 0; i < sim.num_nodes(); ++i) {
      TreeGraphDeferredExecutor executor(DeferredExecConfig{});
      auto reports = executor.CatchUp(sim.node(i));
      if (!reports.ok()) {
        std::fprintf(stderr, "node %zu: %s\n", i,
                     reports.status().ToString().c_str());
        roots_agree = false;
        continue;
      }
      const Hash256 root = executor.state().RootHash();
      if (i == 0) {
        ref_root = root;
      } else if (root != ref_root) {
        roots_agree = false;
      }
    }
  } else {
    std::fprintf(stderr, "unknown --scheme %s\n", opt.scheme.c_str());
    return 1;
  }

  return Verdict(orders_agree, roots_agree);
}
