// abort_report: the worked abort-attribution example from
// docs/OBSERVABILITY.md — build one contended batch, then explain every
// abort the scheduler produced: which conflict kind, which address, whether
// the §IV.D reorder was attempted and why it failed, which addresses are
// hottest, and which Algorithm 1 tie-break rules fired.
//
// Usage: abort_report [--scheme S] [--skew Z] [--txs N] [--seed R]
//                     [--json PATH]
//   e.g.: ./build/examples/abort_report --scheme nezha --skew 0.99
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "cc/scheduler.h"
#include "node/full_node.h"
#include "obs/abort_attribution.h"
#include "runtime/concurrent_executor.h"
#include "workload/smallbank_workload.h"

using namespace nezha;

namespace {

constexpr char kUsage[] =
    "usage: abort_report [--scheme S] [--skew Z] [--txs N] [--seed R]\n"
    "                    [--json PATH]\n"
    "  --scheme S  serial | occ | cg | nezha (default nezha)\n"
    "  --skew Z    Zipfian account skew (default 0.99, a hot-key workload)\n"
    "  --txs N     batch size (default 200)\n"
    "  --seed R    workload seed (default 42)\n"
    "  --json PATH machine-readable report (bench emitter document)\n";

}  // namespace

int main(int argc, char** argv) {
  SchemeKind scheme = SchemeKind::kNezha;
  double skew = 0.99;
  std::size_t txs_count = 200;
  std::uint64_t seed = 42;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--scheme") == 0) {
      auto parsed = ParseScheme(next());
      if (!parsed.ok()) {
        std::fprintf(stderr, "unknown scheme '%s'\n", argv[i]);
        return 1;
      }
      scheme = *parsed;
    } else if (std::strcmp(argv[i], "--skew") == 0) {
      skew = std::strtod(next(), nullptr);
    } else if (std::strcmp(argv[i], "--txs") == 0) {
      txs_count = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = next();
    } else {
      std::fputs(kUsage, stderr);
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 1;
    }
  }

  WorkloadConfig config;
  config.num_accounts = 10'000;
  config.skew = skew;
  SmallBankWorkload workload(config, seed);
  StateDB db;
  const StateSnapshot snap = db.MakeSnapshot(0);
  const auto txs = workload.MakeBatch(txs_count);
  const auto exec = ExecuteBatchSerial(snap, txs);

  auto scheduler = MakeScheduler(scheme);
  const auto schedule = scheduler->BuildSchedule(exec.rwsets);
  if (!schedule.ok()) {
    std::fprintf(stderr, "BuildSchedule failed: %s\n",
                 schedule.status().ToString().c_str());
    return 1;
  }
  const obs::ScheduleAttribution& attribution = schedule->attribution;
  const obs::AttributionRollup rollup = obs::BuildRollup(attribution);

  std::printf("abort report — %s, SmallBank, skew %.2f, %zu txs, seed %llu\n",
              scheduler->name().data(), skew, txs_count,
              static_cast<unsigned long long>(seed));
  std::printf("committed %zu / %zu (abort rate %.1f%%)\n\n",
              schedule->NumCommitted(), schedule->TxCount(),
              schedule->AbortRate() * 100);

  std::printf("aborts by cause:\n");
  for (std::size_t i = 0; i < obs::kNumConflictKinds; ++i) {
    const auto kind = static_cast<obs::ConflictKind>(i);
    std::printf("  %-26s %llu\n", obs::ConflictKindName(kind),
                static_cast<unsigned long long>(rollup.Kind(kind)));
  }
  std::printf("  reorders committed/attempted %llu/%llu\n\n",
              static_cast<unsigned long long>(rollup.reorder_commits),
              static_cast<unsigned long long>(rollup.reorder_attempts));

  std::printf("hottest addresses (by aborts, then population):\n");
  std::printf("  %-12s %-8s %-8s %-8s\n", "address", "readers", "writers",
              "aborts");
  for (const obs::AddressHeat& h : rollup.hot_addresses) {
    std::printf("  %-12llu %-8u %-8u %-8u\n",
                static_cast<unsigned long long>(h.address), h.readers,
                h.writers, h.aborts);
  }

  const obs::RankDecisionStats& rank = attribution.rank;
  std::printf("\nrank division (Algorithm 1):\n");
  std::printf("  zero-in-degree pops   %llu\n",
              static_cast<unsigned long long>(rank.zero_indegree_pops));
  std::printf("  cycle breaks          %llu\n",
              static_cast<unsigned long long>(rank.cycle_breaks));
  std::printf("    by min in-degree    %llu\n",
              static_cast<unsigned long long>(rank.tiebreak_min_indegree));
  std::printf("    by max out-degree   %llu\n",
              static_cast<unsigned long long>(rank.tiebreak_out_degree));
  std::printf("    by min subscript    %llu\n",
              static_cast<unsigned long long>(rank.tiebreak_subscript));

  std::printf("\nper-abort records (first 10):\n");
  std::printf("  %-6s %-12s %-26s %-6s %s\n", "tx", "address", "kind", "seq",
              "reorder");
  std::size_t shown = 0;
  for (const obs::AbortRecord& r : attribution.aborts) {
    if (++shown > 10) break;
    std::printf("  %-6u %-12llu %-26s %-6llu %s\n", r.tx,
                static_cast<unsigned long long>(r.address),
                obs::ConflictKindName(r.kind),
                static_cast<unsigned long long>(r.seq_at_decision),
                r.reorder_attempted
                    ? obs::ReorderFailureName(r.reorder_failure)
                    : "not-attempted");
  }
  if (attribution.aborts.size() > 10) {
    std::printf("  ... %zu more\n", attribution.aborts.size() - 10);
  }

  if (!json_path.empty()) {
    bench::JsonResult result;
    result.bench = "abort_report";
    result.scheme = std::string(scheduler->name());
    result.params.Set("workload", "smallbank");
    result.params.Set("skew", skew);
    result.params.Set("txs", txs_count);
    result.params.Set("seed", seed);
    result.abort_rate = schedule->AbortRate();
    result.rollup = rollup;
    bench::JsonReport report("abort_report");
    report.Add(result);
    if (!report.WriteTo(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
