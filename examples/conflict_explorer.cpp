// conflict_explorer: visualize what Nezha's concurrency control actually
// does to a contended batch.
//
// Generates a small skewed SmallBank batch, prints the address-based
// conflict graph (each address's readers/writers and the address-dependency
// edges), the sorting ranks Algorithm 1 assigns, and the final sequence
// numbers / aborts from Algorithm 2 — the paper's Figures 4, 6 and 7
// rendered on live data.
//
// Usage: conflict_explorer [num_txs] [num_accounts] [skew] [seed]
#include <cstdio>
#include <cstdlib>

#include "cc/nezha/acg.h"
#include "cc/nezha/nezha_scheduler.h"
#include "cc/nezha/rank_division.h"
#include "runtime/concurrent_executor.h"
#include "vm/smallbank.h"
#include "workload/smallbank_workload.h"

using namespace nezha;

int main(int argc, char** argv) {
  std::size_t num_txs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 12;
  WorkloadConfig config;
  config.num_accounts = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
  config.skew = argc > 3 ? std::strtod(argv[3], nullptr) : 0.0;
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 7;

  SmallBankWorkload workload(config, seed);
  StateDB db;
  SmallBankWorkload::InitAccounts(db, config.num_accounts, 100, 100);
  const StateSnapshot snap = db.MakeSnapshot(0);
  const auto txs = workload.MakeBatch(num_txs);
  const auto exec = ExecuteBatchSerial(snap, txs);

  std::printf("=== batch (%zu txs over %llu accounts, skew %.1f) ===\n",
              num_txs,
              static_cast<unsigned long long>(config.num_accounts),
              config.skew);
  for (TxIndex t = 0; t < txs.size(); ++t) {
    std::printf("  T%-3u %-14s reads {", t,
                SmallBankOpName(static_cast<SmallBankOp>(txs[t].payload.op)));
    for (Address a : exec.rwsets[t].reads) std::printf(" %s", ToString(a).c_str());
    std::printf(" } writes {");
    for (Address a : exec.rwsets[t].writes) std::printf(" %s", ToString(a).c_str());
    std::printf(" }\n");
  }

  const auto acg = AddressConflictGraph::Build(exec.rwsets);
  std::printf("\n=== address-based conflict graph (%zu addresses, %zu edges) ===\n",
              acg.NumAddresses(), acg.NumEdges());
  for (std::size_t e = 0; e < acg.NumAddresses(); ++e) {
    const AddressRWSet& entry = acg.entries()[e];
    std::printf("  %-6s readers {", ToString(entry.address).c_str());
    for (TxIndex t : entry.readers) std::printf(" T%u", t);
    std::printf(" } writers {");
    for (TxIndex t : entry.writers) std::printf(" T%u", t);
    std::printf(" } -> depends on {");
    for (Digraph::Vertex w :
         acg.dependencies().OutNeighbors(static_cast<Digraph::Vertex>(e))) {
      std::printf(" %s", ToString(acg.entries()[w].address).c_str());
    }
    std::printf(" }\n");
  }

  const auto ranks = ComputeSortingRanks(acg.dependencies());
  std::printf("\n=== sorting ranks (Algorithm 1) ===\n  ");
  for (Digraph::Vertex v : ranks) {
    std::printf("%s ", ToString(acg.entries()[v].address).c_str());
  }
  std::printf("\n");

  NezhaScheduler scheduler;
  auto schedule = scheduler.BuildSchedule(exec.rwsets);
  if (!schedule.ok()) return 1;
  std::printf("\n=== hierarchical sorting result (Algorithm 2 + §IV.D) ===\n");
  for (const auto& group : schedule->groups) {
    std::printf("  seq %-4u:", schedule->sequence[group[0]]);
    for (TxIndex t : group) std::printf(" T%u", t);
    std::printf("\n");
  }
  std::size_t aborted = 0;
  for (TxIndex t = 0; t < txs.size(); ++t) {
    if (schedule->aborted[t]) {
      std::printf("  aborted : T%u\n", t);
      ++aborted;
    }
  }
  std::printf(
      "\n%zu committed in %zu groups (max group %zu), %zu aborted, "
      "%zu reordered by the enhancement\n",
      schedule->NumCommitted(), schedule->groups.size(),
      schedule->groups.empty()
          ? 0
          : std::max_element(schedule->groups.begin(), schedule->groups.end(),
                             [](const auto& a, const auto& b) {
                               return a.size() < b.size();
                             })
                ->size(),
      aborted, scheduler.metrics().reordered_txs);
  return 0;
}
