// epoch_stats: runs N epochs through the full pipeline with the whole
// observability layer armed, then dumps both export formats —
//   * Prometheus-style text (stdout): per-phase latency histograms,
//     scheduler abort-reason counters, thread-pool queue-depth gauges,
//     storage flush stats (docs/OBSERVABILITY.md lists every series);
//   * Chrome trace_event JSON (--trace-out, default epoch_stats_trace.json):
//     open it in chrome://tracing or ui.perfetto.dev to see the nested
//     validate / execute / cc / commit spans of every epoch.
//
//   * machine-readable JSON (--json PATH): the bench emitter's document —
//     throughput/latency/abort rate plus the abort-attribution rollup
//     merged over every epoch's flight record;
//   * flight-recorder JSONL (--flight-out PATH): one line per epoch with
//     phase durations, ACG stats, rank tie-break counters and per-abort
//     records (docs/OBSERVABILITY.md describes the schema).
//
// Usage: epoch_stats [--scheme S] [--epochs N] [--block-size B]
//                    [--concurrency W] [--skew Z] [--trace-out PATH]
//                    [--json PATH] [--flight-out PATH] [--verify]
//   e.g.: ./build/examples/epoch_stats --scheme nezha --epochs 20 --verify
//
// --verify forces the serializability oracle (docs/ANALYSIS.md) onto every
// schedule regardless of build type, so the nezha_verify_schedules_total /
// nezha_verify_failures_total counters and the nezha_verify_us latency
// histogram show up in the Prometheus dump.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "cc/scheduler.h"
#include "node/simulation.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace nezha;

namespace {

constexpr char kUsage[] =
    "usage: epoch_stats [--scheme S] [--epochs N] [--block-size B]\n"
    "                   [--concurrency W] [--skew Z] [--trace-out PATH]\n"
    "                   [--json PATH] [--flight-out PATH] [--verify]\n"
    "  --scheme S       serial | occ | cg | nezha (default nezha)\n"
    "  --epochs N       epochs to simulate (default 20)\n"
    "  --block-size B   transactions per block (default 200)\n"
    "  --concurrency W  blocks per epoch (default 4)\n"
    "  --skew Z         Zipfian account skew (default 0.6)\n"
    "  --trace-out PATH Chrome trace JSON (default epoch_stats_trace.json)\n"
    "  --json PATH      machine-readable summary (bench emitter document)\n"
    "  --flight-out PATH  epoch flight records as JSON Lines\n"
    "  --verify         force the serializability oracle onto every "
    "schedule\n";

}  // namespace

int main(int argc, char** argv) {
  SimulationConfig config;
  config.node.scheme = SchemeKind::kNezha;
  config.block_concurrency = 4;
  config.epochs = 20;
  config.workload.num_accounts = 10'000;
  config.workload.skew = 0.6;
  config.block_size = 200;
  config.seed = 2026;
  std::string trace_path = "epoch_stats_trace.json";
  std::string json_path;
  std::string flight_path;

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--scheme") == 0) {
      auto scheme = ParseScheme(next());
      if (!scheme.ok()) {
        std::fprintf(stderr, "unknown scheme '%s'\n", argv[i]);
        return 1;
      }
      config.node.scheme = *scheme;
    } else if (std::strcmp(argv[i], "--epochs") == 0) {
      config.epochs = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--block-size") == 0) {
      config.block_size = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--concurrency") == 0) {
      config.block_concurrency = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--skew") == 0) {
      config.workload.skew = std::strtod(next(), nullptr);
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      trace_path = next();
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = next();
    } else if (std::strcmp(argv[i], "--flight-out") == 0) {
      flight_path = next();
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      SetScheduleVerification(true);
    } else {
      std::fputs(kUsage, stderr);
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 1;
    }
  }

  obs::PhaseTracer::Global().SetEnabled(true);
  obs::FlightRecorder::Global().Clear();

  auto summary = RunSimulation(config);
  if (!summary.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 summary.status().ToString().c_str());
    return 1;
  }

  std::fprintf(stderr,
               "# %s: %zu epochs, %zu txs, %zu committed, abort rate %.2f%%\n",
               SchemeName(config.node.scheme), summary->reports.size(),
               summary->TotalTxs(), summary->TotalCommitted(),
               summary->AbortRate() * 100);

  // Export 1: Prometheus-style text on stdout.
  std::fputs(obs::Registry().RenderText().c_str(), stdout);

  // Export 2: Chrome trace_event JSON.
  if (!obs::PhaseTracer::Global().WriteChromeTrace(trace_path)) {
    std::fprintf(stderr, "failed to write trace to %s\n", trace_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "# wrote %zu trace spans to %s (chrome://tracing)\n",
               obs::PhaseTracer::Global().EventCount(), trace_path.c_str());

  // Export 3: epoch flight records as JSON Lines.
  if (!flight_path.empty()) {
    if (!obs::FlightRecorder::Global().WriteJsonl(flight_path)) {
      std::fprintf(stderr, "failed to write flight records to %s\n",
                   flight_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "# wrote %zu flight records to %s\n",
                 obs::FlightRecorder::Global().RecordCount(),
                 flight_path.c_str());
  }

  // Export 4: machine-readable summary through the bench emitter.
  if (!json_path.empty()) {
    obs::AttributionRollup rollup;
    for (const obs::EpochFlightRecord& record :
         obs::FlightRecorder::Global().Records()) {
      rollup.Merge(obs::BuildRollup(record.attribution));
    }
    bench::JsonResult result;
    result.bench = "epoch_stats";
    result.scheme = SchemeName(config.node.scheme);
    result.params.Set("workload", "smallbank");
    result.params.Set("skew", config.workload.skew);
    result.params.Set("block_size", config.block_size);
    result.params.Set("block_concurrency", config.block_concurrency);
    result.params.Set("epochs", config.epochs);
    result.params.Set("seed", config.seed);
    result.throughput_tps = summary->EffectiveTps();
    result.latency_ms = summary->MeanTotalMs();
    result.abort_rate = summary->AbortRate();
    result.rollup = rollup;
    bench::JsonReport report("epoch_stats");
    report.Add(result);
    if (!report.WriteTo(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
