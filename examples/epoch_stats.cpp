// epoch_stats: runs N epochs through the full pipeline with the whole
// observability layer armed, then dumps both export formats —
//   * Prometheus-style text (stdout): per-phase latency histograms,
//     scheduler abort-reason counters, thread-pool queue-depth gauges,
//     storage flush stats (docs/OBSERVABILITY.md lists every series);
//   * Chrome trace_event JSON (--trace-out, default epoch_stats_trace.json):
//     open it in chrome://tracing or ui.perfetto.dev to see the nested
//     validate / execute / cc / commit spans of every epoch.
//
// Usage: epoch_stats [--scheme S] [--epochs N] [--block-size B]
//                    [--concurrency W] [--skew Z] [--trace-out PATH]
//                    [--verify]
//   e.g.: ./build/examples/epoch_stats --scheme nezha --epochs 20 --verify
//
// --verify forces the serializability oracle (docs/ANALYSIS.md) onto every
// schedule regardless of build type, so the nezha_verify_schedules_total /
// nezha_verify_failures_total counters and the nezha_verify_us latency
// histogram show up in the Prometheus dump.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cc/scheduler.h"
#include "node/simulation.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace nezha;

int main(int argc, char** argv) {
  SimulationConfig config;
  config.node.scheme = SchemeKind::kNezha;
  config.block_concurrency = 4;
  config.epochs = 20;
  config.workload.num_accounts = 10'000;
  config.workload.skew = 0.6;
  config.block_size = 200;
  config.seed = 2026;
  std::string trace_path = "epoch_stats_trace.json";

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--scheme") == 0) {
      auto scheme = ParseScheme(next());
      if (!scheme.ok()) {
        std::fprintf(stderr, "unknown scheme '%s'\n", argv[i]);
        return 1;
      }
      config.node.scheme = *scheme;
    } else if (std::strcmp(argv[i], "--epochs") == 0) {
      config.epochs = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--block-size") == 0) {
      config.block_size = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--concurrency") == 0) {
      config.block_concurrency = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--skew") == 0) {
      config.workload.skew = std::strtod(next(), nullptr);
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      trace_path = next();
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      SetScheduleVerification(true);
    } else {
      std::fprintf(stderr,
                   "usage: epoch_stats [--scheme S] [--epochs N] "
                   "[--block-size B] [--concurrency W] [--skew Z] "
                   "[--trace-out PATH] [--verify]\n");
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 1;
    }
  }

  obs::PhaseTracer::Global().SetEnabled(true);

  auto summary = RunSimulation(config);
  if (!summary.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 summary.status().ToString().c_str());
    return 1;
  }

  std::fprintf(stderr,
               "# %s: %zu epochs, %zu txs, %zu committed, abort rate %.2f%%\n",
               SchemeName(config.node.scheme), summary->reports.size(),
               summary->TotalTxs(), summary->TotalCommitted(),
               summary->AbortRate() * 100);

  // Export 1: Prometheus-style text on stdout.
  std::fputs(obs::Registry().RenderText().c_str(), stdout);

  // Export 2: Chrome trace_event JSON.
  if (!obs::PhaseTracer::Global().WriteChromeTrace(trace_path)) {
    std::fprintf(stderr, "failed to write trace to %s\n", trace_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "# wrote %zu trace spans to %s (chrome://tracing)\n",
               obs::PhaseTracer::Global().EventCount(), trace_path.c_str());
  return 0;
}
