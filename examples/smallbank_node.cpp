// smallbank_node: a full DAG-blockchain node processing SmallBank epochs.
//
// Drives the complete §III.B pipeline — parallel block production on an
// OHIE-style ledger, validation, concurrent speculative execution through
// the MiniVM, Nezha concurrency control, grouped commitment, MPT state
// roots — and prints a per-epoch report.
//
// Usage: smallbank_node [scheme] [block_concurrency] [epochs] [skew]
//   scheme: serial | occ | cg | nezha | nezha-noreorder   (default nezha)
//   e.g.:  ./build/examples/smallbank_node nezha 8 5 0.6
#include <cstdio>
#include <cstdlib>

#include "node/simulation.h"

using namespace nezha;

int main(int argc, char** argv) {
  SimulationConfig config;
  config.node.scheme = SchemeKind::kNezha;
  config.block_concurrency = 4;
  config.epochs = 5;
  config.workload.num_accounts = 10'000;
  config.workload.skew = 0.6;
  config.block_size = 200;
  config.seed = 2026;

  if (argc > 1) {
    auto scheme = ParseScheme(argv[1]);
    if (!scheme.ok()) {
      std::fprintf(stderr, "unknown scheme '%s'\n", argv[1]);
      return 1;
    }
    config.node.scheme = *scheme;
  }
  if (argc > 2) config.block_concurrency = std::strtoul(argv[2], nullptr, 10);
  if (argc > 3) config.epochs = std::strtoul(argv[3], nullptr, 10);
  if (argc > 4) config.workload.skew = std::strtod(argv[4], nullptr);

  std::printf(
      "scheme=%s  block_concurrency=%zu  epochs=%zu  skew=%.2f  "
      "block_size=%zu\n\n",
      SchemeName(config.node.scheme), config.block_concurrency, config.epochs,
      config.workload.skew, config.block_size);

  auto summary = RunSimulation(config);
  if (!summary.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 summary.status().ToString().c_str());
    return 1;
  }

  std::printf("%-7s%-7s%-9s%-9s%-12s%-10s%-10s%-12s%s\n", "epoch", "txs",
              "commit", "abort", "execute", "cc(ms)", "commit", "maxgroup",
              "state root");
  for (const EpochReport& r : summary->reports) {
    std::printf("%-7llu%-7zu%-9zu%-9zu%-12.2f%-10.2f%-10.2f%-12zu%.16s...\n",
                static_cast<unsigned long long>(r.epoch), r.txs, r.committed,
                r.aborted, r.execute_ms, r.cc_ms, r.commit_ms,
                r.max_commit_group, r.state_root.ToHex().c_str());
  }
  std::printf(
      "\ntotals: %zu txs, %zu committed, abort rate %.2f%%, mean cc+commit "
      "%.2f ms, effective throughput %.1f tx/s (1 s epochs)\n",
      summary->TotalTxs(), summary->TotalCommitted(),
      summary->AbortRate() * 100, summary->MeanCcCommitMs(),
      summary->EffectiveTps());
  return 0;
}
