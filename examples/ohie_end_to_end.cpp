// ohie_end_to_end: the complete system in one run.
//
// Simulates an OHIE network (N miners, k parallel chains, Poisson mining,
// latency-delayed broadcast) whose miners package SmallBank transactions,
// then lets every node independently execute its confirmed block sequence
// through deferred execution with Nezha concurrency control — and checks
// that all replicas arrive at the same state root.
//
// Usage: ohie_end_to_end [nodes] [chains] [duration_ms] [skew]
#include <cstdio>
#include <cstdlib>

#include "consensus/ohie_sim.h"
#include "node/mempool.h"
#include "node/ohie_bridge.h"
#include "workload/smallbank_workload.h"

using namespace nezha;

int main(int argc, char** argv) {
  OhieSimConfig sim_config;
  sim_config.num_nodes = argc > 1
      ? static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10)) : 5;
  sim_config.num_chains = argc > 2
      ? static_cast<ChainId>(std::strtoul(argv[2], nullptr, 10)) : 4;
  sim_config.duration_ms =
      argc > 3 ? std::strtod(argv[3], nullptr) : 30'000;
  const double skew = argc > 4 ? std::strtod(argv[4], nullptr) : 0.6;
  sim_config.mean_block_interval_ms = 150;
  sim_config.confirm_depth = 5;
  sim_config.seed = 42;
  sim_config.drop_probability = 0.10;   // lossy links...
  sim_config.gossip_interval_ms = 500;  // ...healed by anti-entropy gossip

  std::printf(
      "OHIE network: %u nodes, %u chains, %.0f ms horizon, "
      "~%.0f ms/block, confirm depth %zu, SmallBank skew %.1f\n\n",
      sim_config.num_nodes, sim_config.num_chains, sim_config.duration_ms,
      sim_config.mean_block_interval_ms, sim_config.confirm_depth, skew);

  WorkloadConfig workload_config;
  workload_config.num_accounts = 10'000;
  workload_config.skew = skew;
  SmallBankWorkload client(workload_config, 123);

  // Clients submit into a mempool; each mined block drains a batch from it
  // (refilled lazily so the pool never starves).
  Mempool mempool;
  OhieSimulation sim(sim_config, [&client, &mempool](NodeId) {
    if (mempool.PendingCount() < 20) {
      const auto refill = client.MakeBatch(200);
      mempool.AddAll(refill);
    }
    return mempool.TakeBatch(20);
  });
  sim.Run();

  const OhieSimStats& stats = sim.stats();
  std::printf("consensus: %zu blocks mined (", stats.blocks_mined);
  for (std::size_t chain = 0; chain < stats.blocks_per_chain.size(); ++chain) {
    std::printf("%s%zu", chain == 0 ? "" : "/",
                stats.blocks_per_chain[chain]);
  }
  std::printf(
      " per chain), %zu forked, %zu confirmed, confirm bar %llu\n"
      "network: %zu deliveries dropped, %zu blocks recovered by gossip\n\n",
      stats.forked_blocks, stats.confirmed_blocks,
      static_cast<unsigned long long>(sim.node(0).ConfirmBar()),
      stats.dropped_deliveries, stats.gossip_transfers);

  Hash256 reference{};
  bool consistent = true;
  for (std::size_t i = 0; i < sim.num_nodes(); ++i) {
    OhieBridgeConfig bridge_config;
    bridge_config.scheme = SchemeKind::kNezha;
    OhieDeferredExecutor executor(bridge_config);
    auto reports = executor.CatchUp(sim.node(i));
    if (!reports.ok()) {
      std::fprintf(stderr, "node %zu execution failed: %s\n", i,
                   reports.status().ToString().c_str());
      return 1;
    }
    std::size_t txs = 0, committed = 0, aborted = 0;
    double cc_ms = 0;
    for (const EpochReport& r : *reports) {
      txs += r.txs;
      committed += r.committed;
      aborted += r.aborted;
      cc_ms += r.cc_ms;
    }
    const Hash256 root = executor.state().RootHash();
    std::printf(
        "node %zu: %llu epochs, %zu txs -> %zu committed / %zu aborted, "
        "total cc %.2f ms, root %.16s...\n",
        i, static_cast<unsigned long long>(executor.executed_windows()), txs,
        committed, aborted, cc_ms, root.ToHex().c_str());
    if (i == 0) {
      reference = root;
    } else if (root != reference) {
      consistent = false;
    }
  }
  std::printf("\nreplica state roots %s\n",
              consistent ? "AGREE — the network is consistent"
                         : "DIVERGE — consistency violated!");
  return consistent ? 0 : 1;
}
