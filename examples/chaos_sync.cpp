// chaos_sync: state sync against a deliberately faulty server.
//
// Builds a source state, arms the fault injector with seeded drop /
// corruption / delay rates on the statesync/server/chunk site, then runs
// the resilient StateSyncClient driver (per-chunk timeout, bounded
// exponential backoff with jitter, re-requests, blacklisting) and prints
// the retry/backoff statistics plus the sync series from the metrics
// registry. Same seed, same chaos, same numbers — every run replays.
//
// Usage: chaos_sync [--accounts N] [--chunk-size C] [--drop P]
//                   [--corrupt P] [--delay P] [--delay-ms MS] [--seed S]
//                   [--timeout-ms MS] [--max-attempts N]
//   e.g.: ./build/examples/chaos_sync --drop 0.2 --corrupt 0.05
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fault/fault.h"
#include "node/state_sync.h"
#include "obs/metrics.h"
#include "storage/state_db.h"
#include "workload/smallbank_workload.h"

using namespace nezha;

int main(int argc, char** argv) {
  std::uint64_t accounts = 20'000;
  std::size_t chunk_size = 512;
  double drop = 0.20;
  double corrupt = 0.05;
  double delay = 0.05;
  std::uint64_t delay_ms = 200;
  std::uint64_t seed = 1234;
  SyncRetryPolicy policy;
  policy.chunk_timeout_ms = 50;
  policy.max_attempts_per_chunk = 32;

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--accounts") == 0) {
      accounts = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--chunk-size") == 0) {
      chunk_size = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--drop") == 0) {
      drop = std::strtod(next(), nullptr);
    } else if (std::strcmp(argv[i], "--corrupt") == 0) {
      corrupt = std::strtod(next(), nullptr);
    } else if (std::strcmp(argv[i], "--delay") == 0) {
      delay = std::strtod(next(), nullptr);
    } else if (std::strcmp(argv[i], "--delay-ms") == 0) {
      delay_ms = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0) {
      policy.chunk_timeout_ms = std::strtod(next(), nullptr);
    } else if (std::strcmp(argv[i], "--max-attempts") == 0) {
      policy.max_attempts_per_chunk = std::strtoul(next(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  policy.seed = seed;

  StateDB source;
  SmallBankWorkload::InitAccounts(source, accounts, 1000, 1000);
  StateSyncServer server(source, chunk_size);
  std::printf("source: %llu accounts, %llu chunks of %zu, root %s\n",
              static_cast<unsigned long long>(accounts),
              static_cast<unsigned long long>(server.NumChunks()), chunk_size,
              server.root().ToHex().substr(0, 16).c_str());
  std::printf("chaos:  drop=%.0f%% corrupt=%.0f%% delay=%.0f%% (%llu ms "
              "vs %.0f ms timeout), seed=%llu\n",
              drop * 100, corrupt * 100, delay * 100,
              static_cast<unsigned long long>(delay_ms),
              policy.chunk_timeout_ms, static_cast<unsigned long long>(seed));

  fault::Plan plan(seed);
  plan.WithProbability(fault::sites::kSyncServeChunk, fault::Action::kDrop,
                       drop);
  plan.WithProbability(fault::sites::kSyncServeChunk, fault::Action::kCorrupt,
                       corrupt, /*mode: transport flip*/ 0);
  plan.WithProbability(fault::sites::kSyncServeChunk, fault::Action::kDelay,
                       delay, delay_ms);
  fault::ScopedPlan armed(std::move(plan));

  ServerChunkSource transport(server, "chaos-server");
  StateSyncClient client(server.root());
  StateDB target;
  const Status status = client.SyncFrom(transport, target, policy);
  if (!status.ok()) {
    std::fprintf(stderr, "sync FAILED: %s\n", status.ToString().c_str());
    return 1;
  }
  if (target.RootHash() != server.root()) {
    std::fprintf(stderr, "root mismatch after sync\n");
    return 1;
  }

  const SyncStats& stats = client.stats();
  std::printf("\nsync OK: root verified, %llu records installed\n",
              static_cast<unsigned long long>(target.Size()));
  std::printf("  chunks verified    %llu\n",
              static_cast<unsigned long long>(stats.chunks_verified));
  std::printf("  fetch attempts     %llu\n",
              static_cast<unsigned long long>(stats.fetch_attempts));
  std::printf("  retries            %llu\n",
              static_cast<unsigned long long>(stats.retries));
  std::printf("  drops/timeouts     %llu\n",
              static_cast<unsigned long long>(stats.drops));
  std::printf("  checksum failures  %llu\n",
              static_cast<unsigned long long>(stats.checksum_failures));
  std::printf("  proof failures     %llu\n",
              static_cast<unsigned long long>(stats.proof_failures));
  std::printf("  backoff total      %.1f ms (simulated)\n",
              stats.backoff_ms_total);

  std::printf("\nmetrics registry (nezha_sync_* / nezha_fault_*):\n");
  for (const auto& sample : obs::Registry().Snapshot().samples) {
    if (sample.name.rfind("nezha_sync_", 0) == 0 ||
        sample.name.rfind("nezha_fault_", 0) == 0) {
      std::printf("  %s%s = %.1f\n", sample.name.c_str(),
                  sample.labels.c_str(), sample.value);
    }
  }
  return 0;
}
