// Quickstart: schedule a handful of conflicting transactions with Nezha.
//
// Walks the library's core loop in ~60 lines:
//   1. build a state snapshot,
//   2. speculatively execute a small SmallBank batch against it,
//   3. run Nezha concurrency control over the read/write sets,
//   4. inspect the commit groups (same group = commits concurrently),
//   5. apply the schedule and print the resulting balances.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "cc/nezha/nezha_scheduler.h"
#include "common/thread_pool.h"
#include "runtime/committer.h"
#include "runtime/concurrent_executor.h"
#include "storage/state_db.h"
#include "vm/smallbank.h"

using namespace nezha;

int main() {
  // 1. A tiny world: three accounts with funded checking balances.
  StateDB state;
  for (std::uint64_t account : {0u, 1u, 2u}) {
    state.Set(CheckingAddress(account), 100);
  }
  const StateSnapshot snapshot = state.MakeSnapshot(/*epoch=*/0);

  // 2. Four transactions, two of which race on account 0's checking cell.
  std::vector<Transaction> txs(4);
  txs[0].payload = MakeSmallBankCall(SmallBankOp::kSendPayment, {0, 1, 30});
  txs[1].payload = MakeSmallBankCall(SmallBankOp::kUpdateBalance, {0, 5});
  txs[2].payload = MakeSmallBankCall(SmallBankOp::kGetBalance, {2});
  txs[3].payload = MakeSmallBankCall(SmallBankOp::kUpdateSavings, {2, 50});

  ThreadPool pool(2);
  const BatchExecutionResult exec = ExecuteBatchConcurrent(pool, snapshot, txs);
  for (std::size_t i = 0; i < txs.size(); ++i) {
    std::printf("T%zu reads %zu addresses, writes %zu\n", i,
                exec.rwsets[i].reads.size(), exec.rwsets[i].writes.size());
  }

  // 3. Nezha: ACG -> rank division -> hierarchical sorting.
  NezhaScheduler scheduler;
  auto schedule = scheduler.BuildSchedule(exec.rwsets);
  if (!schedule.ok()) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 schedule.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect the outcome.
  std::printf("\ncommit groups (one line per group; same line = concurrent):\n");
  for (const auto& group : schedule->groups) {
    std::printf("  seq %u:", schedule->sequence[group[0]]);
    for (TxIndex t : group) std::printf(" T%u", t);
    std::printf("\n");
  }
  for (TxIndex t = 0; t < txs.size(); ++t) {
    if (schedule->aborted[t]) std::printf("  T%u aborted\n", t);
  }

  // 5. Commit and read the final balances.
  CommitSchedule(pool, state, *schedule, exec.rwsets);
  std::printf("\nfinal checking balances: acct0=%lld acct1=%lld acct2=%lld\n",
              static_cast<long long>(state.Get(CheckingAddress(0))),
              static_cast<long long>(state.Get(CheckingAddress(1))),
              static_cast<long long>(state.Get(CheckingAddress(2))));
  std::printf("state root: %s\n", state.RootHash().ToHex().c_str());
  return 0;
}
